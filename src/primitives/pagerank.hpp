// Multi-GPU PageRank (paper Algorithm 3).
//
// Push formulation: each active vertex divides its rank among its
// out-neighbors (an advance), then a filter updates ranks from the
// accumulated contributions and keeps only vertices whose rank still
// moves more than the threshold.
//
// Communication is *not* frontier-shaped: the remote sub-frontiers
// never change ("we get all these sub-frontiers during the
// initialization step, and only send ranking values during actual
// computation"), so communicate() is overridden to push each border
// proxy's locally-accumulated rank to its host GPU, where the
// combiner is an add. H in O(|B_i|) and C in O(|B_i|) per iteration.
//
// Convergence: every rank update falls below the threshold ratio (the
// active frontier empties) or max_iterations is reached; S does not
// affect scalability.
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

struct PagerankOptions {
  ValueT damping = 0.85f;
  ValueT threshold = 0.001f;  ///< relative per-vertex movement
  int max_iterations = 50;
};

class PagerankProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    util::Array1D<ValueT> rank{"pr.rank"};
    util::Array1D<ValueT> acc{"pr.acc"};  ///< incoming contributions
    /// Border proxies of this GPU (fixed over the whole run).
    std::vector<VertexT> border;
    /// Hosted vertices (the L_i list, reused every update step).
    std::vector<VertexT> hosted;
    /// Scratch for the active-vertex list built by the update filter.
    util::Array1D<VertexT> active{"pr.active"};
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }
  void reset();

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
};

class PagerankEnactor : public core::EnactorBase {
 public:
  PagerankEnactor(PagerankProblem& problem, PagerankOptions options = {})
      : core::EnactorBase(problem),
        pr_problem_(problem),
        options_(options) {}

  void reset();

 protected:
  void iteration_core(Slice& s) override;
  void communicate(Slice& s) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  bool converged(bool all_frontiers_empty, std::uint64_t iteration) override;
  /// Rank pushes commute (floating-point order is fixed by the
  /// ascending hosted-vertex update), so bitmap frontiers are safe.
  bool dense_frontier_capable() const override { return true; }
  /// NOT replayable: the advance's `acc[dst] += ...` contributions are
  /// not idempotent — replaying a partially-run core would double-add
  /// rank mass. A mid-core OOM propagates as an error.
  bool core_replayable() const override { return false; }

 private:
  PagerankProblem& pr_problem_;
  PagerankOptions options_;
  /// Largest relative rank movement per GPU in the latest update step
  /// (each entry written only by its GPU's thread; read between
  /// supersteps for the global stop test).
  std::vector<ValueT> max_rel_delta_;
};

struct PagerankResult {
  std::vector<ValueT> rank;
  vgpu::RunStats stats;
};

PagerankResult run_pagerank(const graph::Graph& g, vgpu::Machine& machine,
                            const core::Config& config,
                            PagerankOptions options = {});

}  // namespace mgg::prim
