#include "primitives/multi_source.hpp"

#include <bit>
#include <limits>
#include <utility>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

namespace {

constexpr ValueT kInf = std::numeric_limits<ValueT>::infinity();

/// Visit every local copy of global vertex `v` as (gpu, local_id):
/// the host copy plus duplicate-all replicas or 1-hop proxies,
/// mirroring BfsProblem::reset's placement scan.
template <typename Fn>
void for_each_copy(const core::ProblemBase& p, VertexT v, Fn&& fn) {
  const auto [host, host_local] = p.locate(v);
  for (int gpu = 0; gpu < p.num_gpus(); ++gpu) {
    if (gpu == host) {
      fn(gpu, host_local);
      continue;
    }
    const part::SubGraph& s = p.sub(gpu);
    if (p.config().duplication == part::Duplication::kAll) {
      fn(gpu, v);
    } else {
      // Proxies are the tail of the local numbering; linear scan is
      // fine at reset time.
      for (VertexT lv = s.num_local; lv < s.num_total(); ++lv) {
        if (s.local_to_global[lv] == v) {
          fn(gpu, lv);
          break;
        }
      }
    }
  }
}

std::uint64_t join_mask_word(VertexT lo, VertexT hi) {
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

}  // namespace

// ------------------------------------------------------------------
// MsProblemBase
// ------------------------------------------------------------------

MsProblemBase::MsProblemBase(int width) : width_(width) {
  MGG_REQUIRE(width >= 1 && width <= kMaxBatchWidth,
              "batch width must be in [1, 64]");
}

void MsProblemBase::init_mask_slice(int gpu) {
  if (mask_slices_.empty()) mask_slices_.resize(num_gpus());
  MaskSlice& m = mask_slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  for (auto* a : {&m.mask, &m.update_cur, &m.update_next}) {
    a->set_allocator(&device(gpu).memory());
    a->allocate(s.num_total());
  }
}

void MsProblemBase::reset_masks(
    std::span<const VertexT> srcs,
    const std::function<void(int slot, int gpu, VertexT lv)>& per_copy) {
  MGG_REQUIRE(!srcs.empty() && srcs.size() <= static_cast<std::size_t>(width_),
              "batch must hold 1..width sources");
  for (const VertexT src : srcs) {
    MGG_REQUIRE(src < partitioned().global_vertices(),
                "source out of range");
  }
  sources_.assign(srcs.begin(), srcs.end());
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    MaskSlice& m = mask_slices_[gpu];
    m.mask.fill(0);
    m.update_cur.fill(0);
    m.update_next.fill(0);
  }
  // Slot bits land in update_next: the enactor's begin_iteration(0)
  // swaps them into update_cur, which iteration 0's advance reads.
  for (int slot = 0; slot < static_cast<int>(srcs.size()); ++slot) {
    const std::uint64_t bit = std::uint64_t{1} << slot;
    for_each_copy(*this, srcs[slot], [&](int gpu, VertexT lv) {
      MaskSlice& m = mask_slices_[gpu];
      m.mask[lv] |= bit;
      m.update_next[lv] |= bit;
      per_copy(slot, gpu, lv);
    });
  }
}

std::vector<std::vector<VertexT>> MsProblemBase::seed_lists() const {
  std::vector<std::vector<VertexT>> seeds(num_gpus());
  for (const VertexT src : sources_) {
    const auto [host, host_local] = locate(src);
    auto& list = seeds[host];
    bool present = false;
    for (const VertexT v : list) {
      if (v == host_local) {
        present = true;
        break;
      }
    }
    if (!present) list.push_back(host_local);
  }
  return seeds;
}

// ------------------------------------------------------------------
// MsBfs
// ------------------------------------------------------------------

void MsBfsProblem::init_data_slice(int gpu) {
  if (slices_.empty()) slices_.resize(num_gpus());
  init_mask_slice(gpu);
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.depth.set_allocator(&device(gpu).memory());
  d.depth.allocate(static_cast<std::size_t>(width()) * s.num_total());
}

void MsBfsProblem::reset(std::span<const VertexT> srcs) {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    slices_[gpu].depth.fill(kInvalidVertex);
  }
  reset_masks(srcs, [&](int slot, int gpu, VertexT lv) {
    const std::size_t stride = sub(gpu).num_total();
    slices_[gpu].depth[static_cast<std::size_t>(slot) * stride + lv] = 0;
  });
}

void MsBfsEnactor::reset(std::span<const VertexT> srcs) {
  ms_problem_.reset(srcs);
  reset_frontiers();
  const auto seeds = ms_problem_.seed_lists();
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    if (!seeds[gpu].empty()) seed_frontier(gpu, seeds[gpu]);
  }
}

void MsBfsEnactor::begin_iteration(std::uint64_t /*iteration*/) {
  // Freeze this iteration's update words and clear the next — the
  // level-synchronous swap that makes the two-phase advance's test
  // pure. Runs single-threaded between supersteps; the clear is one
  // memset-shaped kernel per GPU, charged to the opening superstep.
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    MaskSlice& m = ms_problem_.mask_slice(gpu);
    std::swap(m.update_cur, m.update_next);
    m.update_next.fill(0);
    ms_problem_.device(gpu).add_kernel_cost(
        0, ms_problem_.sub(gpu).num_total(), 1, 1.0, "ms_update_clear");
  }
}

void MsBfsEnactor::iteration_core(Slice& s) {
  MaskSlice& m = ms_problem_.mask_slice(s.gpu);
  MsBfsProblem::DataSlice& d = ms_problem_.data(s.gpu);
  const std::size_t stride = s.sub->num_total();
  const VertexT next_label = static_cast<VertexT>(iteration()) + 1;

  // Split test/commit form, as in BFS: update_cur is frozen for the
  // whole advance and mask only grows, so a false test stays false —
  // the candidate sweep can run on the host pool. The commit re-checks
  // against the live mask and ORs in whatever is still fresh; the
  // operator dedup emits dst once per iteration no matter how many
  // edges contribute bits.
  core::advance_filter(
      s.ctx,
      [&](VertexT src, VertexT dst, SizeT) {
        return (m.update_cur[src] & ~m.mask[dst]) != 0;
      },
      [&](VertexT src, VertexT dst, SizeT) {
        std::uint64_t fresh = m.update_cur[src] & ~m.mask[dst];
        if (fresh == 0) return false;
        m.mask[dst] |= fresh;
        m.update_next[dst] |= fresh;
        while (fresh != 0) {
          const int slot = std::countr_zero(fresh);
          fresh &= fresh - 1;
          d.depth[static_cast<std::size_t>(slot) * stride + dst] = next_label;
        }
        return true;
      });
}

void MsBfsEnactor::fill_vertex_associates(Slice& s, int slot,
                                          std::span<const VertexT> sources,
                                          VertexT* out) {
  const auto& update = ms_problem_.mask_slice(s.gpu).update_next;
  const int shift = slot == 0 ? 0 : 32;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = static_cast<VertexT>(update[sources[i]] >> shift);
  }
}

void MsBfsEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  MaskSlice& m = ms_problem_.mask_slice(s.gpu);
  MsBfsProblem::DataSlice& d = ms_problem_.data(s.gpu);
  const std::size_t stride = s.sub->num_total();
  const VertexT label = static_cast<VertexT>(iteration()) + 1;
  const auto lo = msg.vertex_slot(0);
  const auto hi = msg.vertex_slot(1);
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    std::uint64_t fresh = join_mask_word(lo[i], hi[i]) & ~m.mask[v];
    if (fresh == 0) continue;  // combiner: every received bit known
    // Dedup-append invariant: a hosted vertex is already queued for
    // the next input frontier iff its update_next word is nonzero
    // (written by the local advance or an earlier sender's message).
    if (m.update_next[v] == 0) s.frontier.append_input(v);
    m.mask[v] |= fresh;
    m.update_next[v] |= fresh;
    while (fresh != 0) {
      const int slot = std::countr_zero(fresh);
      fresh &= fresh - 1;
      d.depth[static_cast<std::size_t>(slot) * stride + v] = label;
    }
  }
}

MsBfsResult run_msbfs(const graph::Graph& g, std::span<const VertexT> srcs,
                      vgpu::Machine& machine, const core::Config& config) {
  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    MsBfsProblem problem(static_cast<int>(srcs.size()));
    problem.init(g, machine, cfg);
    MsBfsEnactor enactor(problem);
    enactor.reset(srcs);

    MsBfsResult result;
    result.width = problem.width();
    result.stats = enactor.enact();
    const auto& pg = problem.partitioned();
    const std::size_t nv = pg.global_vertices();
    result.depth.resize(static_cast<std::size_t>(result.width) * nv);
    for (int slot = 0; slot < result.width; ++slot) {
      auto out = result.depth.begin() +
                 static_cast<std::ptrdiff_t>(slot * nv);
      for (VertexT v = 0; v < pg.global_vertices(); ++v) {
        const int gpu = pg.owner_of(v);
        const std::size_t stride = pg.sub(gpu).num_total();
        out[v] = problem.data(gpu).depth[static_cast<std::size_t>(slot) *
                                             stride +
                                         pg.host_local_of(v)];
      }
    }
    return result;
  });
}

// ------------------------------------------------------------------
// MsSssp
// ------------------------------------------------------------------

void MsSsspProblem::init_data_slice(int gpu) {
  if (slices_.empty()) slices_.resize(num_gpus());
  init_mask_slice(gpu);
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  MGG_REQUIRE(s.csr.has_values() || s.csr.num_edges == 0,
              "SSSP needs edge values");
  d.dist.set_allocator(&device(gpu).memory());
  d.dist.allocate(static_cast<std::size_t>(width()) * s.num_total());
}

void MsSsspProblem::reset(std::span<const VertexT> srcs) {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    slices_[gpu].dist.fill(kInf);
  }
  reset_masks(srcs, [&](int slot, int gpu, VertexT lv) {
    const std::size_t stride = sub(gpu).num_total();
    slices_[gpu].dist[static_cast<std::size_t>(slot) * stride + lv] = 0;
  });
}

void MsSsspEnactor::reset(std::span<const VertexT> srcs) {
  ms_problem_.reset(srcs);
  reset_frontiers();
  const auto seeds = ms_problem_.seed_lists();
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    if (!seeds[gpu].empty()) seed_frontier(gpu, seeds[gpu]);
  }
}

void MsSsspEnactor::begin_iteration(std::uint64_t /*iteration*/) {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    MaskSlice& m = ms_problem_.mask_slice(gpu);
    std::swap(m.update_cur, m.update_next);
    m.update_next.fill(0);
    ms_problem_.device(gpu).add_kernel_cost(
        0, ms_problem_.sub(gpu).num_total(), 1, 1.0, "ms_update_clear");
  }
}

int MsSsspEnactor::num_value_associates() const {
  return ms_problem_.width();
}

void MsSsspEnactor::iteration_core(Slice& s) {
  MaskSlice& m = ms_problem_.mask_slice(s.gpu);
  MsSsspProblem::DataSlice& d = ms_problem_.data(s.gpu);
  const std::size_t stride = s.sub->num_total();
  const auto& values = s.sub->csr.edge_values;

  // Sequential single-functor form, for SSSP's reason: a slot's
  // dist[src] may improve mid-advance (src can be a dst of an earlier
  // edge), so there is no pure candidate test. Each edge relaxes only
  // the slots whose source distance changed last iteration.
  core::advance_filter(s.ctx, [&](VertexT src, VertexT dst, SizeT e) {
    std::uint64_t bits = m.update_cur[src];
    if (bits == 0) return false;  // stale proxy word; nothing to relax
    const ValueT w = values[e];
    std::uint64_t improved = 0;
    while (bits != 0) {
      const int slot = std::countr_zero(bits);
      bits &= bits - 1;
      const std::size_t base = static_cast<std::size_t>(slot) * stride;
      const ValueT candidate = d.dist[base + src] + w;
      if (candidate < d.dist[base + dst]) {
        d.dist[base + dst] = candidate;
        improved |= std::uint64_t{1} << slot;
      }
    }
    if (improved == 0) return false;
    m.mask[dst] |= improved;
    m.update_next[dst] |= improved;
    return true;
  });
}

void MsSsspEnactor::fill_vertex_associates(Slice& s, int slot,
                                           std::span<const VertexT> sources,
                                           VertexT* out) {
  const auto& update = ms_problem_.mask_slice(s.gpu).update_next;
  const int shift = slot == 0 ? 0 : 32;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = static_cast<VertexT>(update[sources[i]] >> shift);
  }
}

void MsSsspEnactor::fill_value_associates(Slice& s, int slot,
                                          std::span<const VertexT> sources,
                                          ValueT* out) {
  const auto& dist = ms_problem_.data(s.gpu).dist;
  const std::size_t base =
      static_cast<std::size_t>(slot) * s.sub->num_total();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = dist[base + sources[i]];
  }
}

void MsSsspEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  MaskSlice& m = ms_problem_.mask_slice(s.gpu);
  MsSsspProblem::DataSlice& d = ms_problem_.data(s.gpu);
  const std::size_t stride = s.sub->num_total();
  const auto lo = msg.vertex_slot(0);
  const auto hi = msg.vertex_slot(1);
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    std::uint64_t bits = join_mask_word(lo[i], hi[i]);
    std::uint64_t improved = 0;
    while (bits != 0) {
      const int slot = std::countr_zero(bits);
      bits &= bits - 1;
      const ValueT received = msg.value_slot(slot)[i];
      const std::size_t base = static_cast<std::size_t>(slot) * stride;
      if (received < d.dist[base + v]) {  // combiner: take the minimum
        d.dist[base + v] = received;
        improved |= std::uint64_t{1} << slot;
      }
    }
    if (improved == 0) continue;
    if (m.update_next[v] == 0) s.frontier.append_input(v);
    m.mask[v] |= improved;
    m.update_next[v] |= improved;
  }
}

MsSsspResult run_msssp(const graph::Graph& g, std::span<const VertexT> srcs,
                       vgpu::Machine& machine, const core::Config& config) {
  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    MsSsspProblem problem(static_cast<int>(srcs.size()));
    problem.init(g, machine, cfg);
    MsSsspEnactor enactor(problem);
    enactor.reset(srcs);

    MsSsspResult result;
    result.width = problem.width();
    result.stats = enactor.enact();
    const auto& pg = problem.partitioned();
    const std::size_t nv = pg.global_vertices();
    result.dist.resize(static_cast<std::size_t>(result.width) * nv);
    for (int slot = 0; slot < result.width; ++slot) {
      auto out = result.dist.begin() +
                 static_cast<std::ptrdiff_t>(slot * nv);
      for (VertexT v = 0; v < pg.global_vertices(); ++v) {
        const int gpu = pg.owner_of(v);
        const std::size_t stride = pg.sub(gpu).num_total();
        out[v] = problem.data(gpu).dist[static_cast<std::size_t>(slot) *
                                            stride +
                                        pg.host_local_of(v)];
      }
    }
    return result;
  });
}

}  // namespace mgg::prim
