// Multi-GPU breadth-first search (paper Algorithm 1 / Appendix A).
//
// Programmer-specified pieces:
//   Vertex duplication — duplicate-all by default ("we trade memory
//     usage for better performance for BFS"); duplicate-1-hop also
//     works via Config.
//   Computation — an advance+filter over the input frontier (fused per
//     the allocation scheme); W in O(|E_i|).
//   Communication — selective: only remote frontier vertices are sent,
//     each to its host GPU, with the predecessor ID as the only vertex
//     associate (when mark_predecessors is on).
//   Combination — if a received vertex has not been visited, set its
//     label (and predecessor) and place it in the next input frontier.
//     H in O(|B_i|), C in O(|V_i|).
//   Convergence — all frontiers empty; S ~ D/2 per partition.
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

class BfsProblem : public core::ProblemBase {
 public:
  /// Per-GPU data: depth labels and optional predecessors, indexed by
  /// local vertex ID, charged to the device's memory.
  struct DataSlice {
    util::Array1D<VertexT> labels{"bfs.labels"};
    util::Array1D<VertexT> preds{"bfs.preds"};  ///< global IDs
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }

  /// Prepare a new traversal from global source `src`: reset labels
  /// everywhere; the enactor's frontier is seeded separately (see
  /// BfsEnactor::reset).
  void reset(VertexT src);

  VertexT source() const noexcept { return source_; }

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
  VertexT source_ = 0;
};

class BfsEnactor : public core::EnactorBase {
 public:
  explicit BfsEnactor(BfsProblem& problem)
      : core::EnactorBase(problem), bfs_problem_(problem) {}

  /// Reset problem data and seed the source's host GPU.
  void reset(VertexT src);

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override;
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  /// BFS's advance tolerates bitmap frontiers (visitation is
  /// order-independent within an iteration).
  bool dense_frontier_capable() const override { return true; }
  /// The core is a single advance+filter whose allocation precedes the
  /// functor, and the label stamp is first-writer-wins idempotent, so
  /// a mid-core OOM can be replayed from the top (grow-and-retry).
  bool core_replayable() const override { return true; }

 private:
  BfsProblem& bfs_problem_;
};

/// Result of a BFS run, gathered back to global vertex IDs.
struct BfsResult {
  std::vector<VertexT> labels;  ///< depth from source; kInvalidVertex if unreached
  std::vector<VertexT> preds;  ///< BFS-tree parent (global); empty if not marked
  vgpu::RunStats stats;
};

/// Convenience facade: partition, run one BFS, gather the result.
BfsResult run_bfs(const graph::Graph& g, VertexT src, vgpu::Machine& machine,
                  const core::Config& config);

}  // namespace mgg::prim
