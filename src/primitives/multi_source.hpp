// Bit-packed multi-source BFS / SSSP (batched query traversal).
//
// Classic MS-BFS packing (Then et al., VLDB'15) on the paper's mGPU
// skeleton: up to 64 sources share one traversal, with per-vertex
// 64-bit words instead of scalar labels:
//
//   mask[v]    cumulative source bits that have reached v (monotone);
//   update_cur[v]   bits v newly gained *last* iteration — frozen
//              while this iteration's advance runs, so the two-phase
//              (test, op) advance keeps its pure-candidate contract;
//   update_next[v]  bits gained *this* iteration, written by the
//              advance op and by expand_incoming. begin_iteration()
//              swaps the two arrays and clears the new next — the
//              level-synchronous analogue of BFS's label stamp.
//
// One advance sweep serves the whole batch: an edge (u, v) is live
// when update_cur[u] has bits v's mask lacks; the op ORs the fresh
// bits into mask/update_next and the output frontier carries v *once*
// per iteration (the operator dedup bitmap — dedup per word, not per
// source). W and S are paid once per batch instead of once per source,
// and H shrinks the same way: a remote push sends each border vertex
// once, with the update word as two VertexT associates (lo/hi — masks
// must travel bit-exactly, and ValueT is float), riding the existing
// raw/bitmap/varint wire formats unchanged.
//
// MsBfs stamps per-slot depths (iteration + 1, exactly BFS's label
// rule) so batched depths are bit-identical to 64 individual runs.
// MsSssp keeps per-slot distances and relaxes only the slots set in
// update_cur[src]; relaxation stays on the sequential single-functor
// advance for the same reason SSSP does (dist[src] may improve mid-
// advance). Distances converge to the same unique least fixpoint as
// individual runs, hence bit-identical results there too.
//
// The serve layer (src/serve/) packs point queries into these batches;
// docs/architecture.md §13 has the state-split and batching story.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

/// Width cap: one machine word of source bits.
inline constexpr int kMaxBatchWidth = 64;

/// Per-GPU bit-mask state shared by the multi-source primitives.
struct MaskSlice {
  util::Array1D<std::uint64_t> mask{"ms.mask"};
  util::Array1D<std::uint64_t> update_cur{"ms.update_cur"};
  util::Array1D<std::uint64_t> update_next{"ms.update_next"};
};

/// Common half of the multi-source Problems: a fixed batch width
/// (slot capacity, allocation-time) and the per-run source list
/// (reset-time; may be shorter than width — partial batches leave the
/// tail slots permanently unreached).
class MsProblemBase : public core::ProblemBase {
 public:
  explicit MsProblemBase(int width);

  int width() const noexcept { return width_; }
  /// Sources of the current run, slot i = sources()[i]. Duplicate
  /// entries are legal (slots then shadow each other bit-for-bit).
  std::span<const VertexT> sources() const noexcept { return sources_; }

  MaskSlice& mask_slice(int gpu) { return mask_slices_[gpu]; }

  /// Unique (host_gpu -> host-local IDs) seed lists for the current
  /// sources, ready for seed_frontier (slot order, deduplicated).
  std::vector<std::vector<VertexT>> seed_lists() const;

 protected:
  /// Allocate the mask/update words for `gpu` (called from the derived
  /// init_data_slice alongside its own arrays).
  void init_mask_slice(int gpu);
  /// Zero all mask state, record `srcs`, and set slot bits: mask on
  /// every local copy of each source (so no GPU re-discovers it), and
  /// update_next on every copy (swapped into update_cur by the
  /// enactor's begin_iteration(0) — iteration 0 reads the seeds there).
  /// `per_copy(slot, gpu, lv)` lets the derived reset stamp its own
  /// per-slot value (depth 0 / distance 0) on the same copies.
  void reset_masks(
      std::span<const VertexT> srcs,
      const std::function<void(int slot, int gpu, VertexT lv)>& per_copy);

 private:
  int width_ = 0;
  std::vector<VertexT> sources_;
  std::vector<MaskSlice> mask_slices_;
};

// ------------------------------------------------------------------
// MsBfs
// ------------------------------------------------------------------

class MsBfsProblem : public MsProblemBase {
 public:
  using MsProblemBase::MsProblemBase;

  /// Per-GPU data beyond the mask words: slot-major per-slot depths
  /// (depth of local vertex lv for slot i lives at i * num_total + lv).
  struct DataSlice {
    util::Array1D<VertexT> depth{"msbfs.depth"};
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }

  /// Prepare a batched traversal from `srcs` (1..width() sources).
  void reset(std::span<const VertexT> srcs);

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
};

class MsBfsEnactor : public core::EnactorBase {
 public:
  explicit MsBfsEnactor(MsBfsProblem& problem)
      : core::EnactorBase(problem), ms_problem_(problem) {}

  /// Reset problem data and seed every source's host GPU.
  void reset(std::span<const VertexT> srcs);

 protected:
  void iteration_core(Slice& s) override;
  /// The update word as lo/hi VertexT slots (bit-exact transport).
  int num_vertex_associates() const override { return 2; }
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  /// Swap update_cur/update_next and clear the new next on every GPU
  /// (single-threaded between supersteps); charges the clear as one
  /// memset-shaped kernel per GPU.
  void begin_iteration(std::uint64_t iteration) override;
  /// Word-mask visitation is order-independent within an iteration
  /// (mask ORs are monotone), like BFS's label stamps.
  bool dense_frontier_capable() const override { return true; }
  /// Single advance whose allocation precedes the functors; mask/depth
  /// writes are monotone/first-writer-wins, so replay is safe.
  bool core_replayable() const override { return true; }

 private:
  MsBfsProblem& ms_problem_;
};

/// Batched-BFS result: depth[slot * |V| + v] is slot `slot`'s BFS depth
/// of global vertex v (kInvalidVertex if unreached) — bit-identical to
/// run_bfs(sources[slot]) for every slot.
struct MsBfsResult {
  int width = 0;
  std::vector<VertexT> depth;  ///< slot-major, width x |V|
  vgpu::RunStats stats;

  std::span<const VertexT> slot(int i, std::size_t num_vertices) const {
    return {depth.data() + static_cast<std::size_t>(i) * num_vertices,
            num_vertices};
  }
};

/// Convenience facade: partition, run one batched BFS over `srcs`
/// (1..64 sources), gather per-slot depths.
MsBfsResult run_msbfs(const graph::Graph& g, std::span<const VertexT> srcs,
                      vgpu::Machine& machine, const core::Config& config);

// ------------------------------------------------------------------
// MsSssp
// ------------------------------------------------------------------

class MsSsspProblem : public MsProblemBase {
 public:
  using MsProblemBase::MsProblemBase;

  /// Slot-major per-slot tentative distances (slot i, local lv at
  /// i * num_total + lv; infinity() = unreached).
  struct DataSlice {
    util::Array1D<ValueT> dist{"mssssp.dist"};
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }

  void reset(std::span<const VertexT> srcs);

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
};

class MsSsspEnactor : public core::EnactorBase {
 public:
  explicit MsSsspEnactor(MsSsspProblem& problem)
      : core::EnactorBase(problem), ms_problem_(problem) {}

  void reset(std::span<const VertexT> srcs);

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override { return 2; }
  /// One ValueT slot per batch slot: the sender's tentative distance.
  /// Receivers min-combine only the slots set in the update word.
  int num_value_associates() const override;
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void fill_value_associates(Slice& s, int slot,
                             std::span<const VertexT> sources,
                             ValueT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  void begin_iteration(std::uint64_t iteration) override;
  bool dense_frontier_capable() const override { return true; }
  /// Monotone min-relaxations: replay-safe, as in SSSP.
  bool core_replayable() const override { return true; }

 private:
  MsSsspProblem& ms_problem_;
};

/// Batched-SSSP result: dist[slot * |V| + v] (infinity() if
/// unreachable) — bit-identical to run_sssp(sources[slot]) per slot.
struct MsSsspResult {
  int width = 0;
  std::vector<ValueT> dist;  ///< slot-major, width x |V|
  vgpu::RunStats stats;

  std::span<const ValueT> slot(int i, std::size_t num_vertices) const {
    return {dist.data() + static_cast<std::size_t>(i) * num_vertices,
            num_vertices};
  }
};

MsSsspResult run_msssp(const graph::Graph& g, std::span<const VertexT> srcs,
                       vgpu::Machine& machine, const core::Config& config);

}  // namespace mgg::prim
