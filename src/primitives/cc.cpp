#include "primitives/cc.hpp"

#include <algorithm>
#include <set>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

void CcProblem::init_data_slice(int gpu) {
  MGG_REQUIRE(config().duplication == part::Duplication::kAll,
              "CC requires duplicate-all (pointer jumping indexes the "
              "full component array)");
  MGG_REQUIRE(config().comm == core::CommStrategy::kBroadcast,
              "CC requires broadcast (component updates jump beyond "
              "1-hop neighborhoods)");
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.comp.set_allocator(&device(gpu).memory());
  d.comp.allocate(s.num_total());
  d.changed.assign(s.num_total(), 0);
}

void CcProblem::reset() {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    for (VertexT v = 0; v < d.comp.size(); ++v) d.comp[v] = v;
    std::fill(d.changed.begin(), d.changed.end(), 0);
  }
}

void CcEnactor::reset() {
  cc_problem_.reset();
  reset_frontiers();
  // CC's core scans all local edges regardless of the frontier; no
  // seeding is needed. The frontier only carries change notifications.
}

void CcEnactor::iteration_core(Slice& s) {
  CcProblem::DataSlice& d = cc_problem_.data(s.gpu);
  const graph::Graph& g = s.sub->csr;
  const part::SubGraph& sub = *s.sub;
  std::fill(d.changed.begin(), d.changed.end(), 0);

  // Hooking: each local edge pulls the larger component ID down to the
  // smaller. Only hosted vertices have edges (edge-cut distribution).
  for (VertexT u = 0; u < sub.num_total(); ++u) {
    const auto [begin, end] = g.edge_range(u);
    for (SizeT e = begin; e < end; ++e) {
      const VertexT v = g.col_indices[e];
      const VertexT cu = d.comp[u];
      const VertexT cv = d.comp[v];
      if (cu < cv) {
        d.comp[v] = cu;
        d.changed[v] = 1;
      } else if (cv < cu) {
        d.comp[u] = cv;
        d.changed[u] = 1;
      }
    }
  }
  s.device->add_kernel_cost(g.num_edges, 0, 1, 1.0, "cc_hook");

  // Pointer jumping: full path compression. comp IDs are global vertex
  // IDs, valid indices everywhere thanks to duplicate-all.
  std::uint64_t jump_work = 0;
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    VertexT root = d.comp[v];
    while (d.comp[root] != root) {
      root = d.comp[root];
      ++jump_work;
    }
    if (d.comp[v] != root) {
      d.comp[v] = root;
      d.changed[v] = 1;
    }
  }
  s.device->add_kernel_cost(0, sub.num_total() + jump_work, 1, 1.0,
                            "cc_jump");

  // The output frontier is the changed-vertex set (broadcast payload).
  SizeT changed_count = 0;
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    if (d.changed[v]) ++changed_count;
  }
  VertexT* out = s.frontier.request_output(changed_count);
  SizeT k = 0;
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    if (d.changed[v]) out[k++] = v;
  }
  s.frontier.commit_output(changed_count);
  s.device->add_kernel_cost(0, sub.num_total(), 1, 1.0, "cc_changed");
}

void CcEnactor::fill_vertex_associates(Slice& s, int /*slot*/,
                                       std::span<const VertexT> sources,
                                       VertexT* out) {
  const auto& comp = cc_problem_.data(s.gpu).comp;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = comp[sources[i]];
  }
}

void CcEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  // Combiner: keep the minimum component ID; changed vertices keep the
  // iteration alive so the lower label can propagate locally.
  CcProblem::DataSlice& d = cc_problem_.data(s.gpu);
  const auto comp_in = msg.vertex_slot(0);
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    const VertexT received = comp_in[i];
    if (received < d.comp[v]) {
      d.comp[v] = received;
      s.frontier.append_input(v);
    }
  }
}

CcResult run_cc(const graph::Graph& g, vgpu::Machine& machine,
                core::Config config) {
  // Fixed algorithmic choices (see class comment).
  config.duplication = part::Duplication::kAll;
  config.comm = core::CommStrategy::kBroadcast;

  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    CcProblem problem;
    problem.init(g, machine, cfg);
    CcEnactor enactor(problem);
    enactor.reset();

    CcResult result;
    result.stats = enactor.enact();
    result.comp = gather_vertex_values<VertexT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).comp[lv]; });
    std::set<VertexT> roots(result.comp.begin(), result.comp.end());
    result.num_components = static_cast<VertexT>(roots.size());
    return result;
  });
}

}  // namespace mgg::prim
