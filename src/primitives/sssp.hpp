// Multi-GPU single-source shortest paths (Bellman-Ford style frontier
// relaxation, as in Gunrock).
//
// Programmer-specified pieces (Table I row "SSSP"):
//   Computation — advance relaxes every out-edge of the frontier
//     (dist[dst] <- min(dist[dst], dist[src] + w)); vertices whose
//     distance improved join the output frontier. W in O(b x |E_i|)
//     where b is the revisit factor.
//   Communication — selective; the value associate is the improved
//     distance (plus the predecessor when marked). H in O(2b x |B_i|).
//   Combination — keep the minimum of local and received distances;
//     improved vertices join the next frontier.
//   Convergence — all frontiers empty; S ~ b x D/2.
//
// Default duplication is duplicate-1-hop: SSSP only touches direct
// out-neighbors, the case §III-C calls out as ideal for 1-hop +
// selective (less memory, ID conversion handled by the framework).
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

/// Optional near-far work scheduling (delta-stepping lite, an
/// extension in the Gunrock family beyond the paper's six primitives).
/// With delta > 0, each superstep relaxes only frontier vertices whose
/// tentative distance is below the current threshold; the rest wait in
/// a per-GPU far pile until every near frontier drains, then the
/// threshold advances by delta. Processing near-first avoids relaxing
/// edges from vertices whose distances are still likely to improve,
/// cutting total edge work on weighted graphs.
struct SsspOptions {
  ValueT delta = 0;  ///< 0 disables near-far scheduling
};

class SsspProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    util::Array1D<ValueT> dist{"sssp.dist"};
    util::Array1D<VertexT> preds{"sssp.preds"};  ///< global IDs
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }
  void reset(VertexT src);
  VertexT source() const noexcept { return source_; }

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
  VertexT source_ = 0;
};

class SsspEnactor : public core::EnactorBase {
 public:
  explicit SsspEnactor(SsspProblem& problem, SsspOptions options = {})
      : core::EnactorBase(problem),
        sssp_problem_(problem),
        options_(options) {}

  void reset(VertexT src);

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override;
  int num_value_associates() const override { return 1; }
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void fill_value_associates(Slice& s, int slot,
                             std::span<const VertexT> sources,
                             ValueT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  bool converged(bool all_frontiers_empty, std::uint64_t iteration) override;
  /// Relaxations are monotone min-updates, so bitmap iteration order is
  /// safe (the near-far split converts back to a queue first).
  bool dense_frontier_capable() const override { return true; }
  /// Replayable: relaxations are monotone min-updates, and the near-far
  /// split before the advance re-runs idempotently (deferred vertices
  /// left the input frontier, so the far pile gets no duplicates).
  bool core_replayable() const override { return true; }

 private:
  bool near_far() const { return options_.delta > 0; }

  SsspProblem& sssp_problem_;
  SsspOptions options_;
  ValueT threshold_ = 0;
  /// Deferred far-pile vertices per GPU (local IDs). Each entry is
  /// written by its GPU's thread during the core; drained exclusively
  /// by converged() between supersteps.
  std::vector<std::vector<VertexT>> far_;
};

struct SsspResult {
  std::vector<ValueT> dist;    ///< infinity() if unreachable
  std::vector<VertexT> preds;  ///< shortest-path tree parent (global)
  vgpu::RunStats stats;
};

/// Convenience facade. `config.duplication` defaults in Config are
/// overridden here to the paper's SSSP choice (duplicate-1-hop) unless
/// the caller changed them; pass an explicit config to control fully.
SsspResult run_sssp(const graph::Graph& g, VertexT src,
                    vgpu::Machine& machine, const core::Config& config,
                    SsspOptions options = {});

}  // namespace mgg::prim
