#include "primitives/label_propagation.hpp"

#include <algorithm>
#include <set>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

namespace {

/// The synchronous update rule shared by the device core and the CPU
/// oracle: most frequent neighbor label, smallest label on ties,
/// reading from `current`, or the vertex's own label if it has no
/// neighbors. `scratch` is a reusable buffer of neighbor labels.
template <typename GetLabel>
VertexT most_frequent_neighbor_label(const graph::Graph& g, VertexT v,
                                     GetLabel&& label_of,
                                     std::vector<VertexT>& scratch) {
  const auto neighbors = g.neighbors(v);
  if (neighbors.empty()) return label_of(v);
  scratch.clear();
  for (const VertexT u : neighbors) scratch.push_back(label_of(u));
  std::sort(scratch.begin(), scratch.end());
  VertexT best_label = scratch[0];
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < scratch.size()) {
    std::size_t j = i;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    if (j - i > best_count) {  // strictly greater keeps smallest label
      best_count = j - i;
      best_label = scratch[i];
    }
    i = j;
  }
  return best_label;
}

}  // namespace

void LpProblem::init_data_slice(int gpu) {
  MGG_REQUIRE(config().duplication == part::Duplication::kAll,
              "LP requires duplicate-all (neighbors' labels must be "
              "locally readable)");
  MGG_REQUIRE(config().comm == core::CommStrategy::kBroadcast,
              "LP requires broadcast (every replica needs every "
              "label update)");
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.label.set_allocator(&device(gpu).memory());
  d.label.allocate(s.num_total());
  d.hosted = hosted_vertices(s);
}

void LpProblem::reset() {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    for (VertexT v = 0; v < d.label.size(); ++v) d.label[v] = v;
  }
}

void LpEnactor::reset() {
  lp_problem_.reset();
  reset_frontiers();
}

void LpEnactor::iteration_core(Slice& s) {
  LpProblem::DataSlice& d = lp_problem_.data(s.gpu);
  const graph::Graph& g = s.sub->csr;

  // Synchronous step: compute all new labels from the current ones,
  // then apply. Only hosted vertices are recomputed (their edges are
  // local and complete).
  std::vector<VertexT> scratch;
  std::vector<std::pair<VertexT, VertexT>> updates;  // (vertex, label)
  std::uint64_t edge_work = 0;
  for (const VertexT v : d.hosted) {
    const VertexT candidate = most_frequent_neighbor_label(
        g, v, [&](VertexT u) { return d.label[u]; }, scratch);
    edge_work += g.degree(v);
    if (candidate != d.label[v]) updates.emplace_back(v, candidate);
  }
  VertexT* out = s.frontier.request_output(
      static_cast<SizeT>(updates.size()));
  SizeT k = 0;
  for (const auto& [v, label] : updates) {
    d.label[v] = label;
    out[k++] = v;  // the changed set is the broadcast payload
  }
  s.frontier.commit_output(k);
  s.device->add_kernel_cost(edge_work, d.hosted.size(), 2, 1.0, "lp_gather");
}

void LpEnactor::fill_vertex_associates(Slice& s, int /*slot*/,
                                       std::span<const VertexT> sources,
                                       VertexT* out) {
  const auto& label = lp_problem_.data(s.gpu).label;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = label[sources[i]];
  }
}

void LpEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  // Owner-authoritative combine: the sender hosts these vertices, so
  // replicas adopt the labels verbatim. A change anywhere keeps the
  // iteration alive via the frontier.
  LpProblem::DataSlice& d = lp_problem_.data(s.gpu);
  const auto label_in = msg.vertex_slot(0);
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    const VertexT label = label_in[i];
    if (d.label[v] != label) {
      d.label[v] = label;
      s.frontier.append_input(v);
    }
  }
}

bool LpEnactor::converged(bool all_frontiers_empty,
                          std::uint64_t iteration) {
  return all_frontiers_empty ||
         iteration >= static_cast<std::uint64_t>(options_.max_iterations);
}

LpResult run_label_propagation(const graph::Graph& g,
                               vgpu::Machine& machine, core::Config config,
                               LpOptions options) {
  config.duplication = part::Duplication::kAll;
  config.comm = core::CommStrategy::kBroadcast;

  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    LpProblem problem;
    problem.init(g, machine, cfg);
    LpEnactor enactor(problem, options);
    enactor.reset();

    LpResult result;
    result.stats = enactor.enact();
    result.label = gather_vertex_values<VertexT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).label[lv]; });
    std::set<VertexT> distinct(result.label.begin(), result.label.end());
    result.num_communities = static_cast<VertexT>(distinct.size());
    return result;
  });
}

std::vector<VertexT> cpu_label_propagation(const graph::Graph& g,
                                           int max_iterations) {
  std::vector<VertexT> label(g.num_vertices);
  for (VertexT v = 0; v < g.num_vertices; ++v) label[v] = v;
  std::vector<VertexT> next(label);
  std::vector<VertexT> scratch;
  for (int it = 0; it < max_iterations; ++it) {
    bool changed = false;
    for (VertexT v = 0; v < g.num_vertices; ++v) {
      next[v] = most_frequent_neighbor_label(
          g, v, [&](VertexT u) { return label[u]; }, scratch);
      if (next[v] != label[v]) changed = true;
    }
    label.swap(next);
    if (!changed) break;
  }
  return label;
}

}  // namespace mgg::prim
