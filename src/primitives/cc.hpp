// Multi-GPU connected components.
//
// A hooking + pointer-jumping algorithm in the style of Soman et
// al. [12] — the non-traversal primitive the paper cites as the reason
// an n-hop-limited framework (Medusa) lacks generality: pointer
// jumping dereferences component IDs that can be arbitrarily far away
// in the graph, which is exactly why CC requires duplicate-all (every
// GPU can index the full component array) and broadcast.
//
// Per iteration (Table I row "CC"):
//   hooking       — every local edge (u,v) pulls the larger component
//                   ID down to the smaller one; W in O(|E_i|)
//   pointer jump  — full local path compression; O(|V_i|)
//   communication — broadcast the (vertex, component) pairs that
//                   changed; H in S x O(2|V_i|)
//   combination   — keep the minimum of local and received IDs
//   convergence   — no component ID changed anywhere; S ~ 2-5
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

class CcProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    /// Component ID per vertex (global IDs; duplicate-all replica).
    util::Array1D<VertexT> comp{"cc.comp"};
    /// Scratch change flags for building the changed-vertex frontier.
    std::vector<char> changed;
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }
  void reset();

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
};

class CcEnactor : public core::EnactorBase {
 public:
  explicit CcEnactor(CcProblem& problem)
      : core::EnactorBase(problem), cc_problem_(problem) {}

  void reset();

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override { return 1; }
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  /// NOT replayable: the changed-vertex flags are rebuilt from scratch
  /// each core, so a replay after hooking already lowered component IDs
  /// would miss those vertices in the broadcast and peers could
  /// converge on stale labels. A mid-core OOM propagates as an error.
  bool core_replayable() const override { return false; }

 private:
  CcProblem& cc_problem_;
};

struct CcResult {
  /// Component label per vertex: the smallest vertex ID in the
  /// component (canonical, directly comparable with the CPU oracle).
  std::vector<VertexT> comp;
  VertexT num_components = 0;
  vgpu::RunStats stats;
};

CcResult run_cc(const graph::Graph& g, vgpu::Machine& machine,
                core::Config config);

}  // namespace mgg::prim
