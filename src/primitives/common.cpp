#include "primitives/common.hpp"

#include <vector>

namespace mgg::prim {

std::vector<VertexT> hosted_vertices(const part::SubGraph& sub) {
  std::vector<VertexT> out;
  out.reserve(sub.num_local);
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    if (sub.is_hosted(v)) out.push_back(v);
  }
  return out;
}

std::vector<VertexT> proxy_vertices(const part::SubGraph& sub) {
  // Proxies that can actually receive local contributions are the
  // distinct remote endpoints of local edges (the border B_i). Under
  // duplicate-1-hop that is every non-hosted vertex by construction;
  // under duplicate-all most of V is remote but only the border
  // matters, so scan the local edge lists.
  std::vector<char> touched(sub.num_total(), 0);
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    if (!sub.is_hosted(v)) continue;
    for (const VertexT u : sub.csr.neighbors(v)) {
      if (!sub.is_hosted(u)) touched[u] = 1;
    }
  }
  std::vector<VertexT> out;
  for (VertexT v = 0; v < sub.num_total(); ++v) {
    if (touched[v]) out.push_back(v);
  }
  return out;
}

}  // namespace mgg::prim
