#include "primitives/bc.hpp"

#include <algorithm>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

namespace {
// Message tags (see bc.hpp header comment).
constexpr int kSigmaPartial = 0;    // selective: (v, sigma partial)
constexpr int kFinalizedLevel = 1;  // broadcast: (v, sigma final), depth
constexpr int kDeltaPartial = 2;    // selective: (v, delta partial)
}  // namespace

void BcProblem::init_data_slice(int gpu) {
  MGG_REQUIRE(config().duplication == part::Duplication::kAll,
              "BC requires duplicate-all (replicas need global sigma/"
              "depth for the backward pass)");
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  auto& mem = device(gpu).memory();
  d.depth.set_allocator(&mem);
  d.depth.allocate(s.num_total());
  d.sigma.set_allocator(&mem);
  d.sigma.allocate(s.num_total());
  d.sigma_acc.set_allocator(&mem);
  d.sigma_acc.allocate(s.num_total());
  d.delta_acc.set_allocator(&mem);
  d.delta_acc.allocate(s.num_total());
  d.bc.set_allocator(&mem);
  d.bc.allocate(s.num_total());
  d.bc.fill(0);
  d.border = proxy_vertices(s);
}

void BcProblem::reset(VertexT src) {
  MGG_REQUIRE(src < partitioned().global_vertices(), "source out of range");
  source_ = src;
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    d.depth.fill(kInvalidVertex);
    d.sigma.fill(0);
    d.sigma_acc.fill(0);
    d.delta_acc.fill(0);
    d.levels.clear();
    // Duplicate-all: every replica knows the source.
    d.depth[src] = 0;
    d.sigma[src] = 1;
    d.sigma_acc[src] = 1;
  }
}

void BcProblem::reset_scores() {
  for (int gpu = 0; gpu < num_gpus(); ++gpu) slices_[gpu].bc.fill(0);
}

void BcEnactor::reset(VertexT src) {
  bc_problem_.reset(src);
  reset_frontiers();
  phase_ = Phase::kForward;
  current_level_ = 0;
  const auto [host, host_local] = bc_problem_.locate(src);
  const VertexT seed[] = {host_local};
  seed_frontier(host, seed);
}

void BcEnactor::iteration_core(Slice& s) {
  if (phase_ == Phase::kForward) {
    core_forward(s);
  } else {
    core_backward(s);
  }
}

void BcEnactor::core_forward(Slice& s) {
  BcProblem::DataSlice& d = bc_problem_.data(s.gpu);
  const VertexT level = static_cast<VertexT>(iteration());
  const VertexT next_level = level + 1;
  const auto input = s.frontier.input();

  // Finalize this level's hosted vertices: all sigma partials (local
  // and received) have arrived by now. Record the level list for the
  // backward pass and the finalized broadcast.
  if (d.levels.size() <= level) d.levels.resize(level + 1);
  auto& lvl = d.levels[level];
  lvl.assign(input.begin(), input.end());
  for (const VertexT v : lvl) d.sigma[v] = d.sigma_acc[v];
  s.device->add_kernel_cost(0, input.size(), 1, 1.0, "bc_level");

  // (test, value, commit) form: sigma for this level's sources was
  // finalized just above and is not written by the advance, so each
  // edge's contribution is computable in the parallel phase. The test
  // covers both live cases (undiscovered, or discovered *by this
  // advance* at next_level — the latter is always false against the
  // pre-advance depths, but every edge that matters passes the
  // undiscovered test then). The commit replay accumulates sigma_acc
  // in the original sequential edge order.
  core::advance_filter_values(
      s.ctx,
      [&](VertexT, VertexT v, SizeT) {
        return d.depth[v] == kInvalidVertex || d.depth[v] == next_level;
      },
      [&](VertexT u, VertexT, SizeT) { return d.sigma[u]; },
      [&](VertexT v, double sigma_u) {
        if (d.depth[v] == kInvalidVertex) {
          d.depth[v] = next_level;
          d.sigma_acc[v] += sigma_u;
          return true;
        }
        if (d.depth[v] == next_level) {
          d.sigma_acc[v] += sigma_u;  // another shortest path
        }
        return false;
      });
}

void BcEnactor::core_backward(Slice& s) {
  BcProblem::DataSlice& d = bc_problem_.data(s.gpu);
  const graph::Graph& g = s.sub->csr;
  const VertexT lvl = current_level_;

  std::uint64_t edge_work = 0;
  if (lvl < d.levels.size()) {
    const auto& level = d.levels[lvl];
    util::ThreadPool* pool = s.ctx.pool;
    const std::size_t n_chunks =
        util::ThreadPool::chunk_count(level.size(), core::detail::kSlotGrain);
    if (pool == nullptr || n_chunks == 1) {
      for (const VertexT w : level) {
        const double delta_w = d.delta_acc[w];
        d.bc[w] += delta_w;
        const double coeff = (1.0 + delta_w) / d.sigma[w];
        const auto [begin, end] = g.edge_range(w);
        for (SizeT e = begin; e < end; ++e) {
          const VertexT v = g.col_indices[e];
          if (d.depth[v] + 1 == d.depth[w]) {
            d.delta_acc[v] += d.sigma[v] * coeff;
          }
        }
        edge_work += end - begin;
      }
    } else {
      // Two-phase chunk-log parallelization. Sources w sit at depth
      // lvl and targets v at depth lvl-1, so the parallel phase's
      // bc[w] += delta_w writes (each w appears once per level) and
      // delta_acc[w] / sigma / depth reads never alias another
      // chunk's work; each per-edge contribution sigma[v]*coeff is a
      // pure product of advance-stable values. The delta_acc[v]
      // accumulations — the only cross-w mutation — are logged and
      // replayed in chunk order, i.e. the sequential loop's exact
      // floating-point order.
      auto& chunks = core::detail::ensure_chunks(s.ctx, n_chunks);
      pool->run_chunks(n_chunks, [&](std::size_t c) {
        core::AdvanceChunk& ch = chunks[c];
        const std::size_t b =
            util::ThreadPool::chunk_begin(level.size(), n_chunks, c);
        const std::size_t e =
            util::ThreadPool::chunk_begin(level.size(), n_chunks, c + 1);
        for (std::size_t i = b; i < e; ++i) {
          const VertexT w = level[i];
          const double delta_w = d.delta_acc[w];
          d.bc[w] += delta_w;
          const double coeff = (1.0 + delta_w) / d.sigma[w];
          const auto [begin, end] = g.edge_range(w);
          for (SizeT e2 = begin; e2 < end; ++e2) {
            const VertexT v = g.col_indices[e2];
            if (d.depth[v] + 1 == d.depth[w]) {
              ch.verts.push_back(v);
              ch.values.push_back(d.sigma[v] * coeff);
            }
          }
          ch.work += end - begin;
        }
      });
      for (std::size_t c = 0; c < n_chunks; ++c) {
        const core::AdvanceChunk& ch = chunks[c];
        for (std::size_t i = 0; i < ch.verts.size(); ++i) {
          d.delta_acc[ch.verts[i]] += ch.values[i];
        }
        edge_work += ch.work;
      }
    }
    s.device->add_kernel_cost(edge_work, level.size(), 1, 1.0, "bc_backward");
  }
  s.frontier.request_output(0);
  s.frontier.commit_output(0);
}

// Pipeline note: the forward phase pushes TWO messages to each peer
// (kSigmaPartial, then the kFinalizedLevel broadcast), so no peer's
// handshake may be signaled after the first push — the enactor's
// post-communicate backfill records each peer's event once all pushes
// are on the comm stream, which is the conservative correct schedule.
void BcEnactor::communicate(Slice& s) {
  if (phase_ == Phase::kForward) {
    communicate_forward(s);
  } else {
    communicate_backward(s);
  }
}

void BcEnactor::communicate_forward(Slice& s) {
  BcProblem::DataSlice& d = bc_problem_.data(s.gpu);
  const int n = num_gpus();
  core::Frontier& frontier = s.frontier;
  const SizeT out_items = frontier.output_size();

  if (n == 1) {
    frontier.swap();
    return;
  }

  // (a) Selective sigma partials for remote-discovered vertices; the
  // flat route pass compacts the local sub-frontier in place and
  // scatters remote vertices into per-peer buckets, then one pooled
  // message per peer.
  route_output_frontier(s);
  for (int peer = 0; peer < n; ++peer) {
    const std::span<const VertexT> sources = peer_bucket(s, peer);
    if (peer == s.gpu || sources.empty()) continue;
    core::Message msg = bus().acquire();
    msg.tag = kSigmaPartial;
    msg.set_layout(0, 1, sources.size());
    const auto sigma_out = msg.value_slot(0);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const VertexT v = sources[i];
      msg.vertices[i] = v;  // duplicate-all: global ID
      sigma_out[i] = static_cast<ValueT>(d.sigma_acc[v]);
      d.sigma_acc[v] = 0;  // partial handed off
    }
    // Duplicate-all: payload holds global IDs, bitmap spans |V|.
    encode_for_wire(
        s, msg,
        static_cast<std::size_t>(problem().partitioned().global_vertices()));
    bus().push(s.gpu, peer, std::move(msg));
  }

  // (b) Broadcast this level's finalized (vertex, sigma) pairs so every
  // replica has authoritative depth and sigma for the backward pass.
  // Package once into the slice prototype, stamp a pooled copy per peer.
  const VertexT level = static_cast<VertexT>(iteration());
  if (level < d.levels.size() && !d.levels[level].empty()) {
    const auto& lvl = d.levels[level];
    core::Message& proto = s.broadcast_proto;
    proto.recycle();
    proto.tag = kFinalizedLevel;
    proto.set_layout(0, 1, lvl.size());
    const auto sigma_out = proto.value_slot(0);
    for (std::size_t i = 0; i < lvl.size(); ++i) {
      proto.vertices[i] = lvl[i];
      sigma_out[i] = static_cast<ValueT>(d.sigma[lvl[i]]);
    }
    // One encode kernel covers every peer's copy (assign_from clones
    // the encoded bytes), mirroring split_frontier_and_push's
    // broadcast path.
    encode_for_wire(
        s, proto,
        static_cast<std::size_t>(problem().partitioned().global_vertices()));
    for (int peer = 0; peer < n; ++peer) {
      if (peer == s.gpu) continue;
      core::Message msg = bus().acquire();
      msg.assign_from(proto);
      bus().push(s.gpu, peer, std::move(msg));
    }
  }

  s.device->add_kernel_cost(0, out_items, 1, 1.0, "bc_package");
  frontier.swap();
}

void BcEnactor::communicate_backward(Slice& s) {
  BcProblem::DataSlice& d = bc_problem_.data(s.gpu);
  const int n = num_gpus();
  if (n == 1) {
    s.frontier.swap();
    return;
  }
  // Selective delta partials for proxy parents touched this level,
  // routed through the slice's flat per-peer buckets.
  route_items(s, d.border, [&](VertexT p) { return d.delta_acc[p] != 0; });
  for (int peer = 0; peer < n; ++peer) {
    const std::span<const VertexT> sources = peer_bucket(s, peer);
    if (peer == s.gpu || sources.empty()) continue;
    core::Message msg = bus().acquire();
    msg.tag = kDeltaPartial;
    msg.set_layout(0, 1, sources.size());
    const auto delta_out = msg.value_slot(0);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const VertexT p = sources[i];
      msg.vertices[i] = p;
      delta_out[i] = static_cast<ValueT>(d.delta_acc[p]);
      d.delta_acc[p] = 0;
    }
    encode_for_wire(
        s, msg,
        static_cast<std::size_t>(problem().partitioned().global_vertices()));
    bus().push(s.gpu, peer, std::move(msg));
  }
  s.device->add_kernel_cost(0, d.border.size(), 1, 1.0, "bc_package");
  s.frontier.swap();
}

void BcEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  BcProblem::DataSlice& d = bc_problem_.data(s.gpu);
  const auto values_in = msg.value_slot(0);
  switch (msg.tag) {
    case kSigmaPartial: {
      const VertexT next_level = static_cast<VertexT>(iteration()) + 1;
      for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
        const VertexT v = msg.vertices[i];
        if (d.depth[v] == kInvalidVertex) {
          d.depth[v] = next_level;
          s.frontier.append_input(v);
        } else if (d.depth[v] != next_level) {
          continue;  // not a shortest path (stale replica on sender)
        }
        d.sigma_acc[v] += values_in[i];
      }
      break;
    }
    case kFinalizedLevel: {
      // Authoritative depth/sigma for the sender's hosted vertices.
      const VertexT level = static_cast<VertexT>(iteration());
      for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
        const VertexT v = msg.vertices[i];
        d.depth[v] = level;
        d.sigma[v] = values_in[i];
      }
      break;
    }
    case kDeltaPartial: {
      for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
        d.delta_acc[msg.vertices[i]] += values_in[i];
      }
      break;
    }
    default:
      MGG_ASSERT(false, "unknown BC message tag");
  }
}

bool BcEnactor::converged(bool all_frontiers_empty, std::uint64_t) {
  if (phase_ == Phase::kForward) {
    if (!all_frontiers_empty) return false;
    // Forward done: find the deepest populated level across GPUs and
    // start the backward sweep there.
    VertexT max_level = 0;
    for (int gpu = 0; gpu < num_gpus(); ++gpu) {
      const auto& levels = bc_problem_.data(gpu).levels;
      for (std::size_t l = 0; l < levels.size(); ++l) {
        if (!levels[l].empty()) {
          max_level = std::max(max_level, static_cast<VertexT>(l));
        }
      }
    }
    if (max_level == 0) return true;  // isolated source
    phase_ = Phase::kBackward;
    current_level_ = max_level;
    return false;
  }
  // Backward: one level per iteration, down to level 1.
  if (current_level_ <= 1) return true;
  --current_level_;
  return false;
}

BcResult run_bc(const graph::Graph& g, vgpu::Machine& machine,
                core::Config config, std::vector<VertexT> sources) {
  config.duplication = part::Duplication::kAll;

  if (sources.empty()) {
    sources.resize(g.num_vertices);
    for (VertexT v = 0; v < g.num_vertices; ++v) sources[v] = v;
  }

  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    BcProblem problem;
    problem.init(g, machine, cfg);
    BcEnactor enactor(problem);

    BcResult result;
    for (const VertexT src : sources) {
      enactor.reset(src);
      result.stats = enactor.enact();
      result.total_iterations += result.stats.iterations;
    }
    auto raw = gather_vertex_values<double>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).bc[lv]; });
    result.bc.resize(raw.size());
    for (std::size_t v = 0; v < raw.size(); ++v) {
      // Undirected graphs count each path twice.
      result.bc[v] = static_cast<ValueT>(raw[v] / 2.0);
    }
    return result;
  });
}

}  // namespace mgg::prim
