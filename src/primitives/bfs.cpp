#include "primitives/bfs.hpp"

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

void BfsProblem::init_data_slice(int gpu) {
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.labels.set_allocator(&device(gpu).memory());
  d.labels.allocate(s.num_total());
  if (config().mark_predecessors) {
    d.preds.set_allocator(&device(gpu).memory());
    d.preds.allocate(s.num_total());
  }
}

void BfsProblem::reset(VertexT src) {
  MGG_REQUIRE(src < partitioned().global_vertices(), "source out of range");
  source_ = src;
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    d.labels.fill(kInvalidVertex);
    if (config().mark_predecessors) d.preds.fill(kInvalidVertex);
  }
  // Label the source on its host GPU (and on every GPU that has a
  // proxy for it, so local advances skip it immediately).
  const auto [host, host_local] = locate(src);
  slices_[host].labels[host_local] = 0;
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    if (gpu == host) continue;
    // Under duplicate-all the source exists everywhere (local == global
    // ID); under 1-hop it may exist as a proxy. Find it via the
    // subgraph's local numbering.
    const part::SubGraph& s = sub(gpu);
    if (config().duplication == part::Duplication::kAll) {
      slices_[gpu].labels[src] = 0;
    } else {
      // Proxies are the tail of the local numbering, sorted by global
      // ID; linear scan is fine at reset time.
      for (VertexT lv = s.num_local; lv < s.num_total(); ++lv) {
        if (s.local_to_global[lv] == src) {
          slices_[gpu].labels[lv] = 0;
          break;
        }
      }
    }
  }
}

void BfsEnactor::reset(VertexT src) {
  bfs_problem_.reset(src);
  reset_frontiers();
  const auto [host, host_local] = bfs_problem_.locate(src);
  const VertexT seed[] = {host_local};
  seed_frontier(host, seed);
}

void BfsEnactor::iteration_core(Slice& s) {
  BfsProblem::DataSlice& d = bfs_problem_.data(s.gpu);
  const bool mark_preds = bfs_problem_.config().mark_predecessors;
  const VertexT next_label = static_cast<VertexT>(iteration()) + 1;
  const auto& local_to_global = s.sub->local_to_global;

  // Split test/commit form: the candidate test (an unvisited
  // destination) is pure over the labels at advance start, so the
  // edge sweep can run on the host pool; the commit replay keeps the
  // first-discoverer-wins predecessor choice of the sequential loop.
  core::advance_filter(
      s.ctx,
      [&](VertexT, VertexT dst, SizeT) {
        return d.labels[dst] == kInvalidVertex;
      },
      [&](VertexT src, VertexT dst, SizeT) {
        if (d.labels[dst] != kInvalidVertex) return false;
        d.labels[dst] = next_label;
        if (mark_preds) d.preds[dst] = local_to_global[src];
        return true;
      });
}

int BfsEnactor::num_vertex_associates() const {
  return bfs_problem_.config().mark_predecessors ? 1 : 0;
}

void BfsEnactor::fill_vertex_associates(Slice& s, int /*slot*/,
                                        std::span<const VertexT> sources,
                                        VertexT* out) {
  const auto& preds = bfs_problem_.data(s.gpu).preds;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = preds[sources[i]];
  }
}

void BfsEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  BfsProblem::DataSlice& d = bfs_problem_.data(s.gpu);
  const bool mark_preds = bfs_problem_.config().mark_predecessors;
  const VertexT label = static_cast<VertexT>(iteration()) + 1;
  const auto preds_in =
      mark_preds ? msg.vertex_slot(0) : std::span<const VertexT>{};
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    if (d.labels[v] != kInvalidVertex) continue;  // already visited
    d.labels[v] = label;
    if (mark_preds) d.preds[v] = preds_in[i];
    s.frontier.append_input(v);
  }
}

BfsResult run_bfs(const graph::Graph& g, VertexT src, vgpu::Machine& machine,
                  const core::Config& config) {
  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    BfsProblem problem;
    problem.init(g, machine, cfg);
    BfsEnactor enactor(problem);
    enactor.reset(src);

    BfsResult result;
    result.stats = enactor.enact();
    result.labels = gather_vertex_values<VertexT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).labels[lv]; });
    if (cfg.mark_predecessors) {
      result.preds = gather_vertex_values<VertexT>(
          problem.partitioned(),
          [&](int gpu, VertexT lv) { return problem.data(gpu).preds[lv]; });
    }
    return result;
  });
}

}  // namespace mgg::prim
