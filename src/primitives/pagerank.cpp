#include "primitives/pagerank.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

void PagerankProblem::init_data_slice(int gpu) {
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.rank.set_allocator(&device(gpu).memory());
  d.rank.allocate(s.num_total());
  d.acc.set_allocator(&device(gpu).memory());
  d.acc.allocate(s.num_total());
  d.active.set_allocator(&device(gpu).memory());
  d.active.allocate(s.num_local);
  // The remote sub-frontier is static (Algorithm 3): compute it once.
  d.border = proxy_vertices(s);
  d.hosted = hosted_vertices(s);
}

void PagerankProblem::reset() {
  const auto n = static_cast<ValueT>(partitioned().global_vertices());
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    d.rank.fill(ValueT{1} / n);
    d.acc.fill(0);
  }
}

void PagerankEnactor::reset() {
  pr_problem_.reset();
  reset_frontiers();
  max_rel_delta_.assign(num_gpus(), std::numeric_limits<ValueT>::max());
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    seed_frontier(gpu, pr_problem_.data(gpu).hosted);
  }
}

void PagerankEnactor::iteration_core(Slice& s) {
  PagerankProblem::DataSlice& d = pr_problem_.data(s.gpu);
  const graph::Graph& g = s.sub->csr;
  const auto n =
      static_cast<ValueT>(pr_problem_.partitioned().global_vertices());

  if (iteration() > 0) {
    // Filter/update kernel (skipped on the first iteration, Algorithm
    // 3): fold accumulated contributions into new ranks and measure
    // the largest relative movement for the convergence test.
    ValueT max_rel = 0;
    for (const VertexT v : d.hosted) {
      const ValueT nr =
          (ValueT{1} - options_.damping) / n + options_.damping * d.acc[v];
      max_rel = std::max(
          max_rel, std::abs(nr - d.rank[v]) /
                       std::max(d.rank[v], ValueT{1e-12f}));
      d.rank[v] = nr;
      d.acc[v] = 0;
    }
    max_rel_delta_[s.gpu] = max_rel;
    s.device->add_kernel_cost(0, d.hosted.size(), 1, 1.0, "pr_update");
  }

  // Advance kernel: every hosted vertex divides its rank among its
  // out-neighbors. Emits nothing — PR's frontier is the full hosted
  // set every iteration (Table I: W = S x O(|E_i|)).
  //
  // (test, value, commit) form: ranks are finalized before the push,
  // so the contribution of each edge is computable in the parallel
  // phase, and the commit replay folds them into acc in the original
  // sequential edge order — the accumulation stays bit-identical at
  // every --host-threads value.
  core::advance_filter_values(
      s.ctx, [&](VertexT, VertexT, SizeT) { return true; },
      [&](VertexT src, VertexT, SizeT) {
        return d.rank[src] / static_cast<ValueT>(g.degree(src));
      },
      [&](VertexT dst, ValueT v) {
        d.acc[dst] += v;
        return false;
      });

  // The next iteration works on the full hosted set again.
  s.frontier.carry_input_to_output();
}

void PagerankEnactor::communicate(Slice& s) {
  if (num_gpus() == 1) {
    s.frontier.swap();
    return;
  }
  // Push each border proxy's accumulated rank to its host GPU. The
  // vertex set is static; only the values change (Algorithm 3). Route
  // first (reusing the slice's per-peer scratch), then package one
  // pooled message per peer so the steady state allocates nothing.
  PagerankProblem::DataSlice& d = pr_problem_.data(s.gpu);
  const part::SubGraph& sub = *s.sub;
  route_items(s, d.border, [&](VertexT p) { return d.acc[p] != 0; });
  std::uint64_t chunk_vertices = 0;
  for (int peer = 0; peer < num_gpus(); ++peer) {
    if (peer == s.gpu) continue;
    const std::span<const VertexT> sources = peer_bucket(s, peer);
    if (sources.empty()) {
      mark_peer_idle(s, peer);
      continue;
    }
    if (pipeline_mode()) {
      // This peer's chunk of the packaging kernel: its transfer may
      // start as soon as the chunk is done (see EnactorBase's
      // split_frontier_and_push for the pattern).
      s.device->add_kernel_cost(0, sources.size(), 0, 1.0, "pr_package");
      chunk_vertices += sources.size();
    }
    core::Message msg = bus().acquire();
    msg.set_layout(0, 1, sources.size());
    const auto acc_out = msg.value_slot(0);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const VertexT p = sources[i];
      msg.vertices[i] = sub.host_local_id[p];
      acc_out[i] = d.acc[p];
      d.acc[p] = 0;
    }
    encode_for_wire(
        s, msg, static_cast<std::size_t>(problem().sub(peer).num_total()));
    bus().push(s.gpu, peer, std::move(msg));
    mark_peer_pushed(s, peer);
  }
  // Remainder of the packaging charge (BSP: the whole thing, since no
  // chunks were carved out above). Vertex/launch totals match across
  // modes by construction.
  s.device->add_kernel_cost(0, d.border.size() - chunk_vertices, 1, 1.0,
                            "pr_package");
  s.frontier.swap();
}

void PagerankEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  // Combiner: atomicAdd of received partial ranks (Algorithm 3).
  PagerankProblem::DataSlice& d = pr_problem_.data(s.gpu);
  const auto acc_in = msg.value_slot(0);
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    d.acc[msg.vertices[i]] += acc_in[i];
  }
}

bool PagerankEnactor::converged(bool /*all_frontiers_empty*/,
                                std::uint64_t iteration) {
  if (iteration < 2) return false;  // need one full update round
  for (const ValueT rel : max_rel_delta_) {
    if (rel >= options_.threshold) return false;
  }
  return true;
}

PagerankResult run_pagerank(const graph::Graph& g, vgpu::Machine& machine,
                            const core::Config& config,
                            PagerankOptions options) {
  core::Config base = config;
  // +1 iteration: the first advance happens before the first update.
  base.max_iterations =
      static_cast<std::uint64_t>(options.max_iterations) + 1;

  return run_with_degrade(machine, base, [&](const core::Config& cfg) {
    PagerankProblem problem;
    problem.init(g, machine, cfg);
    PagerankEnactor enactor(problem, options);
    enactor.reset();

    PagerankResult result;
    result.stats = enactor.enact();
    result.rank = gather_vertex_values<ValueT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).rank[lv]; });
    return result;
  });
}

}  // namespace mgg::prim
