// Multi-GPU label-propagation community detection (extension
// primitive — not one of the paper's six, included as evidence for the
// framework's generality claim; it is a standard primitive in the
// wider Gunrock family).
//
// Synchronous LP: every vertex adopts the most frequent label among
// its neighbors (smallest label breaks ties), iterating until no label
// changes or the iteration cap is hit (synchronous LP can oscillate on
// bipartite-like structures, so a cap is part of the algorithm).
//
// Multi-GPU mapping: duplicate-all + broadcast, like CC — but with a
// different combine: labels are *owner-authoritative*. Only a vertex's
// host GPU recomputes its label; replicas adopt received values
// verbatim (no min/max/add semantics), exercising a combiner class the
// six paper primitives don't.
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

struct LpOptions {
  int max_iterations = 50;
};

class LpProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    util::Array1D<VertexT> label{"lp.label"};
    std::vector<VertexT> hosted;
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }
  void reset();

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
};

class LpEnactor : public core::EnactorBase {
 public:
  LpEnactor(LpProblem& problem, LpOptions options = {})
      : core::EnactorBase(problem), lp_problem_(problem), options_(options) {}

  void reset();

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override { return 1; }
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  bool converged(bool all_frontiers_empty, std::uint64_t iteration) override;
  /// NOT replayable: label updates depend on neighbor majorities read
  /// mid-core, so a partial pass is not idempotent. A mid-core OOM
  /// propagates as an error.
  bool core_replayable() const override { return false; }

 private:
  LpProblem& lp_problem_;
  LpOptions options_;
};

struct LpResult {
  std::vector<VertexT> label;      ///< community label per vertex
  VertexT num_communities = 0;
  vgpu::RunStats stats;
};

LpResult run_label_propagation(const graph::Graph& g, vgpu::Machine& machine,
                               core::Config config, LpOptions options = {});

/// Deterministic CPU oracle: the identical synchronous update rule.
std::vector<VertexT> cpu_label_propagation(const graph::Graph& g,
                                           int max_iterations);

}  // namespace mgg::prim
