// Multi-GPU betweenness centrality (Brandes' algorithm).
//
// Two phases inside one enact() run, switched by the converged() hook:
//
//   forward  — a BFS that also counts shortest paths (sigma). Each
//     iteration sends two kinds of messages, matching Table I's
//     H = O(5|B_i| + 2(n-1)|L_i|):
//       tag 0 (selective, O(|B_i|)): partial sigma contributions of
//         remote-discovered vertices to their host GPU, combined by
//         addition (multiple GPUs can contribute shortest paths);
//       tag 1 (broadcast, O((n-1)|L_i|)): the previous level's hosted
//         vertices with their *finalized* sigma and depth, so every
//         replica agrees — the backward pass reads proxy sigma/depth.
//   backward — level-synchronous dependency accumulation from the
//     deepest BFS level down to 1: each vertex w at the current level
//     adds sigma[v]/sigma[w] * (1 + delta[w]) to every parent v.
//     Partial deltas of proxy parents travel to their host (tag 2,
//     selective) and are combined by addition.
//
// bc scores accumulate across sources over repeated reset+enact runs;
// run_bc() divides by 2 at the end (undirected double counting).
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

class BcProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    util::Array1D<VertexT> depth{"bc.depth"};
    util::Array1D<double> sigma{"bc.sigma"};      ///< finalized counts
    util::Array1D<double> sigma_acc{"bc.sigma_acc"};  ///< partials
    util::Array1D<double> delta_acc{"bc.delta_acc"};
    util::Array1D<double> bc{"bc.scores"};  ///< accumulated over sources
    std::vector<std::vector<VertexT>> levels;  ///< hosted vertices per depth
    std::vector<VertexT> border;               ///< proxy list (fixed)
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }

  /// Clear per-source state (depth/sigma/delta/levels); bc scores are
  /// preserved so sources accumulate.
  void reset(VertexT src);
  /// Clear everything including bc scores.
  void reset_scores();
  VertexT source() const noexcept { return source_; }

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
  VertexT source_ = 0;
};

class BcEnactor : public core::EnactorBase {
 public:
  enum class Phase { kForward, kBackward };

  explicit BcEnactor(BcProblem& problem)
      : core::EnactorBase(problem), bc_problem_(problem) {}

  void reset(VertexT src);
  Phase phase() const noexcept { return phase_; }

 protected:
  void iteration_core(Slice& s) override;
  void communicate(Slice& s) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  bool converged(bool all_frontiers_empty, std::uint64_t iteration) override;
  /// NOT replayable: sigma/delta accumulations are additive (replaying
  /// a core would double-count path counts and dependencies). A
  /// mid-core OOM propagates as an error.
  bool core_replayable() const override { return false; }

 private:
  void core_forward(Slice& s);
  void core_backward(Slice& s);
  void communicate_forward(Slice& s);
  void communicate_backward(Slice& s);

  BcProblem& bc_problem_;
  Phase phase_ = Phase::kForward;
  VertexT current_level_ = 0;  ///< backward: level being processed
};

struct BcResult {
  std::vector<ValueT> bc;  ///< centrality (halved for undirected graphs)
  vgpu::RunStats stats;    ///< stats of the *last* source's run
  std::uint64_t total_iterations = 0;  ///< across all sources
};

/// BC accumulated over `sources` (empty = all vertices; the paper uses
/// sampled sources for large graphs).
BcResult run_bc(const graph::Graph& g, vgpu::Machine& machine,
                core::Config config, std::vector<VertexT> sources = {});

}  // namespace mgg::prim
