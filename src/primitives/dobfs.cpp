#include "primitives/dobfs.hpp"

#include <atomic>

#include "primitives/common.hpp"
#include "util/error.hpp"

namespace mgg::prim {

void DobfsProblem::init_data_slice(int gpu) {
  MGG_REQUIRE(config().duplication == part::Duplication::kAll,
              "DOBFS requires duplicate-all (Algorithm 2)");
  MGG_REQUIRE(config().comm == core::CommStrategy::kBroadcast,
              "DOBFS requires broadcast (the next iteration may use "
              "either direction)");
  if (slices_.empty()) slices_.resize(num_gpus());
  DataSlice& d = slices_[gpu];
  const part::SubGraph& s = sub(gpu);
  d.labels.set_allocator(&device(gpu).memory());
  d.labels.allocate(s.num_total());
  if (config().mark_predecessors) {
    d.preds.set_allocator(&device(gpu).memory());
    d.preds.allocate(s.num_total());
  }
  d.unvisited.set_allocator(&device(gpu).memory());
  d.unvisited.allocate(s.num_local);
}

void DobfsProblem::reset(VertexT src) {
  MGG_REQUIRE(src < partitioned().global_vertices(), "source out of range");
  source_ = src;
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    DataSlice& d = slices_[gpu];
    d.labels.fill(kInvalidVertex);
    if (config().mark_predecessors) d.preds.fill(kInvalidVertex);
    d.num_unvisited = 0;
    // Duplicate-all: the source's replica is labeled on every GPU.
    d.labels[src] = 0;
  }
}

void DobfsEnactor::reset(VertexT src) {
  dobfs_problem_.reset(src);
  reset_frontiers();
  direction_ = Direction::kForward;
  switched_to_backward_ = false;
  switches_ = 0;
  visited_hosted_.assign(num_gpus(), 0);
  needs_rebuild_.assign(num_gpus(), 0);
  const auto [host, host_local] = dobfs_problem_.locate(src);
  visited_hosted_[host] = 1;
  const VertexT seed[] = {host_local};
  seed_frontier(host, seed);
}

void DobfsEnactor::begin_iteration(std::uint64_t iteration) {
  // Global direction decision (§VI-A), single-threaded between
  // supersteps, using only already-available inputs.
  const auto& pg = dobfs_problem_.partitioned();
  const double total_v = static_cast<double>(pg.global_vertices());
  const double total_e = static_cast<double>(pg.global_edges());

  double q = 0;  // |Q|: current frontier across GPUs
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    q += static_cast<double>(slice(gpu).frontier.input_size());
  }
  double p = 0;  // |P|: visited vertices
  for (const auto count : visited_hosted_) p += static_cast<double>(count);
  const double u = total_v - p;  // |U|: unvisited vertices

  const double fv = q * total_e / total_v;
  const double bv = p > 0 ? u * total_v / p : 0;

  if (direction_ == Direction::kForward && !switched_to_backward_ &&
      iteration > 0 && u > 0 && fv > bv * options_.do_a) {
    direction_ = Direction::kBackward;
    switched_to_backward_ = true;  // only one f->b switch is allowed
    ++switches_;
    // Each GPU must scan for its unvisited vertices before pulling.
    needs_rebuild_.assign(num_gpus(), 1);
  } else if (direction_ == Direction::kBackward &&
             fv < bv * options_.do_b) {
    direction_ = Direction::kForward;
    ++switches_;
  }
}

void DobfsEnactor::iteration_core(Slice& s) {
  if (direction_ == Direction::kForward) {
    core_forward(s);
  } else {
    core_backward(s);
  }
}

void DobfsEnactor::core_forward(Slice& s) {
  DobfsProblem::DataSlice& d = dobfs_problem_.data(s.gpu);
  const bool mark_preds = dobfs_problem_.config().mark_predecessors;
  const VertexT next_label = static_cast<VertexT>(iteration()) + 1;
  const part::SubGraph& sub = *s.sub;
  std::uint64_t discovered_hosted = 0;

  // Split test/commit form (see BfsEnactor::iteration_core): the
  // unvisited test is pure, so the edge sweep parallelizes; the
  // commit replay (and with it discovered_hosted) stays sequential
  // and bit-identical to the historical loop.
  core::advance_filter(
      s.ctx,
      [&](VertexT, VertexT dst, SizeT) {
        return d.labels[dst] == kInvalidVertex;
      },
      [&](VertexT src, VertexT dst, SizeT) {
        if (d.labels[dst] != kInvalidVertex) return false;
        d.labels[dst] = next_label;
        if (mark_preds) d.preds[dst] = src;  // duplicate-all: local == global
        if (sub.is_hosted(dst)) ++discovered_hosted;
        return true;
      });
  visited_hosted_[s.gpu] += discovered_hosted;
}

void DobfsEnactor::core_backward(Slice& s) {
  DobfsProblem::DataSlice& d = dobfs_problem_.data(s.gpu);
  const bool mark_preds = dobfs_problem_.config().mark_predecessors;
  const VertexT frontier_label = static_cast<VertexT>(iteration());
  const VertexT next_label = frontier_label + 1;
  const part::SubGraph& sub = *s.sub;

  if (needs_rebuild_[s.gpu]) {
    // The one-time unvisited scan the paper pays on the f->b switch.
    needs_rebuild_[s.gpu] = false;
    SizeT count = 0;
    for (VertexT v = 0; v < sub.num_total(); ++v) {
      if (sub.is_hosted(v) && d.labels[v] == kInvalidVertex) {
        d.unvisited[count++] = v;
      }
    }
    d.num_unvisited = count;
    s.device->add_kernel_cost(0, sub.num_total(), 1, 1.0, "dobfs_rebuild");
  }

  const std::span<const VertexT> candidates{
      d.unvisited.data(), static_cast<std::size_t>(d.num_unvisited)};
  // The pull runs candidates in parallel on the host pool, and a
  // candidate can simultaneously be another candidate's potential
  // parent — so label reads/writes go through relaxed atomic_refs.
  // The *decision* is timing-independent either way: a concurrently
  // committed candidate moves kInvalidVertex -> next_label, and
  // neither value equals frontier_label, so the parent test gives the
  // same answer whichever value the load observes.
  const SizeT produced = core::advance_pull(
      s.ctx, candidates, [&](VertexT v, VertexT parent, SizeT) {
        const VertexT parent_label =
            std::atomic_ref<VertexT>(d.labels[parent])
                .load(std::memory_order_relaxed);
        if (parent_label != frontier_label) return false;
        std::atomic_ref<VertexT>(d.labels[v]).store(
            next_label, std::memory_order_relaxed);
        if (mark_preds) d.preds[v] = parent;
        return true;
      });
  visited_hosted_[s.gpu] += produced;

  // Compact the unvisited list: drop everything discovered this pull
  // or by earlier broadcasts.
  SizeT keep = 0;
  for (SizeT i = 0; i < d.num_unvisited; ++i) {
    const VertexT v = d.unvisited[i];
    if (d.labels[v] == kInvalidVertex) d.unvisited[keep++] = v;
  }
  s.device->add_kernel_cost(0, d.num_unvisited, 1, 1.0, "dobfs_compact");
  d.num_unvisited = keep;
}

int DobfsEnactor::num_vertex_associates() const {
  return dobfs_problem_.config().mark_predecessors ? 1 : 0;
}

void DobfsEnactor::fill_vertex_associates(Slice& s, int /*slot*/,
                                          std::span<const VertexT> sources,
                                          VertexT* out) {
  const auto& preds = dobfs_problem_.data(s.gpu).preds;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out[i] = preds[sources[i]];
  }
}

void DobfsEnactor::expand_incoming(Slice& s, const core::Message& msg) {
  DobfsProblem::DataSlice& d = dobfs_problem_.data(s.gpu);
  const bool mark_preds = dobfs_problem_.config().mark_predecessors;
  const VertexT label = static_cast<VertexT>(iteration()) + 1;
  const part::SubGraph& sub = *s.sub;
  const auto preds_in =
      mark_preds ? msg.vertex_slot(0) : std::span<const VertexT>{};
  for (std::size_t i = 0; i < msg.vertices.size(); ++i) {
    const VertexT v = msg.vertices[i];
    if (d.labels[v] != kInvalidVertex) continue;
    d.labels[v] = label;
    if (mark_preds) d.preds[v] = preds_in[i];
    if (sub.is_hosted(v)) {
      ++visited_hosted_[s.gpu];
      s.frontier.append_input(v);
    }
  }
}

DobfsResult run_dobfs(const graph::Graph& g, VertexT src,
                      vgpu::Machine& machine, core::Config config,
                      DobfsOptions options) {
  // Algorithm 2's fixed choices.
  config.duplication = part::Duplication::kAll;
  config.comm = core::CommStrategy::kBroadcast;

  return run_with_degrade(machine, config, [&](const core::Config& cfg) {
    DobfsProblem problem;
    problem.init(g, machine, cfg);
    DobfsEnactor enactor(problem, options);
    enactor.reset(src);

    DobfsResult result;
    result.stats = enactor.enact();
    result.direction_switches = enactor.direction_switches();
    result.labels = gather_vertex_values<VertexT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).labels[lv]; });
    if (cfg.mark_predecessors) {
      result.preds = gather_vertex_values<VertexT>(
          problem.partitioned(),
          [&](int gpu, VertexT lv) { return problem.data(gpu).preds[lv]; });
    }
    return result;
  });
}

}  // namespace mgg::prim
