// Shared helpers for graph primitives.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "graph/types.hpp"
#include "partition/partitioned_graph.hpp"
#include "util/error.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

/// Degraded re-enact (Config::degrade_on_device_loss): run `body` with
/// the given config; if it fails with kUnavailable *and* the machine's
/// fault injector marked a device permanently lost, acknowledge the
/// loss (disarming the dead device's permanent faults — the surviving
/// GPUs are renumbered onto the remaining device slots) and re-run the
/// whole primitive from scratch on n-1 vGPUs. The rerun recomputes a
/// full, correct result; RunStats::degraded_reruns records that it
/// happened. Any other failure — or a loss with the feature off, a
/// single-GPU run, or no injector — propagates unchanged.
///
/// `body` must be re-entrant: it receives the config by value and
/// rebuilds problem + enactor itself, so the failed run's state is
/// discarded wholesale.
template <typename Body>
auto run_with_degrade(vgpu::Machine& machine, const core::Config& config,
                      Body&& body) -> decltype(body(config)) {
  try {
    return body(config);
  } catch (const Error& e) {
    if (e.status() != Status::kUnavailable ||
        !config.degrade_on_device_loss || config.num_gpus <= 1) {
      throw;
    }
    vgpu::FaultInjector* injector = machine.fault_injector();
    if (injector == nullptr || injector->lost_device() < 0) throw;
    injector->acknowledge_device_loss();
    core::Config degraded = config;
    degraded.num_gpus = config.num_gpus - 1;
    auto result = body(degraded);
    result.stats.degraded_reruns += 1;
    return result;
  }
}

/// Gather a per-vertex result distributed across GPUs back into one
/// global array: for every global vertex, read the value its *host*
/// GPU computed (each GPU is authoritative only for hosted vertices).
template <typename T, typename Getter>
std::vector<T> gather_vertex_values(const part::PartitionedGraph& pg,
                                    Getter&& get) {
  std::vector<T> out(pg.global_vertices());
  for (VertexT v = 0; v < pg.global_vertices(); ++v) {
    out[v] = get(pg.owner_of(v), pg.host_local_of(v));
  }
  return out;
}

/// Local vertex IDs hosted by GPU `gpu` (the L_i set), in local-ID order.
std::vector<VertexT> hosted_vertices(const part::SubGraph& sub);

/// Local vertex IDs of proxies on GPU `gpu` (remote-hosted vertices
/// that appear in the local vertex set): the outgoing border B_i as a
/// concrete list.
std::vector<VertexT> proxy_vertices(const part::SubGraph& sub);

}  // namespace mgg::prim
