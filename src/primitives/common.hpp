// Shared helpers for graph primitives.
#pragma once

#include <functional>
#include <vector>

#include "core/problem.hpp"
#include "graph/types.hpp"
#include "partition/partitioned_graph.hpp"

namespace mgg::prim {

/// Gather a per-vertex result distributed across GPUs back into one
/// global array: for every global vertex, read the value its *host*
/// GPU computed (each GPU is authoritative only for hosted vertices).
template <typename T, typename Getter>
std::vector<T> gather_vertex_values(const part::PartitionedGraph& pg,
                                    Getter&& get) {
  std::vector<T> out(pg.global_vertices());
  for (VertexT v = 0; v < pg.global_vertices(); ++v) {
    out[v] = get(pg.owner_of(v), pg.host_local_of(v));
  }
  return out;
}

/// Local vertex IDs hosted by GPU `gpu` (the L_i set), in local-ID order.
std::vector<VertexT> hosted_vertices(const part::SubGraph& sub);

/// Local vertex IDs of proxies on GPU `gpu` (remote-hosted vertices
/// that appear in the local vertex set): the outgoing border B_i as a
/// concrete list.
std::vector<VertexT> proxy_vertices(const part::SubGraph& sub);

}  // namespace mgg::prim
