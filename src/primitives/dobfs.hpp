// Multi-GPU direction-optimizing BFS (paper Algorithm 2 and §VI-A).
//
// Forward ("push") iterations are ordinary BFS advances. Backward
// ("pull") iterations use the per-vertex advance mode: every unvisited
// hosted vertex scans its neighbor list and stops at the first parent
// found in the current frontier (edge skipping).
//
// The paper's two mGPU-specific fixes are both implemented:
//   1. The frontier carried between iterations is always the
//      *newly-discovered* vertex set, giving a direction-independent
//      view — switching directions costs nothing except the one
//      unvisited-scan performed on the (single allowed) forward ->
//      backward switch.
//   2. The switch rule uses only already-available inputs:
//        FV = |Q| * |E| / |V|   (estimated forward edges)
//        BV = |U| * |V| / |P|   (estimated backward edges)
//      switch forward->backward when FV > BV * do_a (once), and
//      backward->forward when FV < BV * do_b. Defaults do_a = 0.01,
//      do_b = 0.1 (the paper's social-graph values; they are
//      mGPU-independent).
//
// Communication is broadcast with duplicate-all, because the next
// iteration may run in either direction and the pull needs every
// GPU's visited status for its local proxies. H in O((n-1)|V|) — the
// communication wall that makes DOBFS scale flat (§VII-B).
#pragma once

#include <vector>

#include "core/enactor.hpp"
#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "util/array1d.hpp"
#include "vgpu/machine.hpp"

namespace mgg::prim {

struct DobfsOptions {
  double do_a = 0.01;  ///< forward -> backward threshold
  double do_b = 0.1;   ///< backward -> forward threshold
};

class DobfsProblem : public core::ProblemBase {
 public:
  struct DataSlice {
    util::Array1D<VertexT> labels{"dobfs.labels"};
    util::Array1D<VertexT> preds{"dobfs.preds"};
    /// Hosted unvisited vertices (rebuilt on the forward->backward
    /// switch, compacted each pull iteration).
    util::Array1D<VertexT> unvisited{"dobfs.unvisited"};
    SizeT num_unvisited = 0;
  };

  DataSlice& data(int gpu) { return slices_[gpu]; }
  void reset(VertexT src);
  VertexT source() const noexcept { return source_; }

 protected:
  void init_data_slice(int gpu) override;

 private:
  std::vector<DataSlice> slices_;
  VertexT source_ = 0;
};

class DobfsEnactor : public core::EnactorBase {
 public:
  enum class Direction { kForward, kBackward };

  DobfsEnactor(DobfsProblem& problem, DobfsOptions options = {})
      : core::EnactorBase(problem),
        dobfs_problem_(problem),
        options_(options) {}

  void reset(VertexT src);

  Direction direction() const noexcept { return direction_; }
  int direction_switches() const noexcept { return switches_; }

 protected:
  void iteration_core(Slice& s) override;
  int num_vertex_associates() const override;
  void fill_vertex_associates(Slice& s, int slot,
                              std::span<const VertexT> sources,
                              VertexT* out) override;
  void expand_incoming(Slice& s, const core::Message& msg) override;
  void begin_iteration(std::uint64_t iteration) override;
  /// Replayable in both directions: labels are first-writer-wins
  /// stamps, the operators allocate before their functors run, and the
  /// backward rebuild is guarded by a consumed flag (re-running the
  /// core leaves an already-built unvisited list intact). The hosted
  /// counters and the compaction pass run only after a successful
  /// advance, so a mid-core OOM never double-counts them.
  bool core_replayable() const override { return true; }

 private:
  void core_forward(Slice& s);
  void core_backward(Slice& s);

  DobfsProblem& dobfs_problem_;
  DobfsOptions options_;
  Direction direction_ = Direction::kForward;
  bool switched_to_backward_ = false;  ///< the paper allows one f->b switch
  int switches_ = 0;
  /// |P| contributions per GPU: hosted vertices visited so far. Each
  /// entry is written only by its GPU's control thread; the global
  /// direction decision reads them between supersteps (barrier-ordered).
  std::vector<std::uint64_t> visited_hosted_;
  std::vector<char> needs_rebuild_;  ///< per GPU, set on the f->b switch
};

struct DobfsResult {
  std::vector<VertexT> labels;
  std::vector<VertexT> preds;
  vgpu::RunStats stats;
  int direction_switches = 0;
};

DobfsResult run_dobfs(const graph::Graph& g, VertexT src,
                      vgpu::Machine& machine, core::Config config,
                      DobfsOptions options = {});

}  // namespace mgg::prim
