#!/usr/bin/env bash
# Full pre-merge check: the tier-1 verify from ROADMAP.md, then a
# ThreadSanitizer build of the concurrency-sensitive suites (the comm
# layer, the enactor's control threads, fault paths, and the stream
# stress tests). Usage: scripts/check.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"

echo "==> tier-1: configure + build + ctest"
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "==> operator-pipeline property suite (explicit)"
"$BUILD/tests/mgg_tests" --gtest_filter='OperatorPipeline.*'

echo "==> sync-mode differential suite + handshake stressors (explicit)"
# Pins barrier-vs-pipeline results and W/H counters bit-identical and
# hammers the handshake table's ordering/abort paths.
"$BUILD/tests/mgg_tests" \
  --gtest_filter='SyncPipeline.*:StreamStress.Handshake*'

echo "==> micro_operators acceptance gate (writes BENCH_operators.json)"
"$BUILD/bench/micro_operators" --json="$BUILD/BENCH_operators.json"

echo "==> chaos + fault-recovery suites (explicit)"
# Seeded fault plans against whole primitive runs plus the targeted
# recovery tests (grow-and-retry, comm retries, watchdog, degraded
# re-enact). Every chaos assertion message carries its fault-plan
# seed, so a red run is reproducible straight from this log.
"$BUILD/tests/mgg_tests" \
  --gtest_filter='Chaos.*:ChaosTsan.*:FaultRecovery.*:FaultInjection.*'

echo "==> wire-format differential + adversarial suite (explicit)"
# Bit-identical results/frontiers across {raw, bitmap, varint, auto}
# x {BSP, pipeline} x 1-8 vGPUs, the encoder fallback chain, and the
# corrupt-payload rejections.
"$BUILD/tests/mgg_tests" --gtest_filter='WireFormat.*'

echo "==> parallel-exec differential suite (explicit)"
# Host worker pool (docs/architecture.md §12): results, W/H and modeled
# times bit-identical at every Config::host_threads width. Each test
# sweeps widths {1, 2, 4, 8} internally (sequential baseline, the
# chunk-boundary widths and the auto cap), plus the pool's error and
# nesting protocol and the steady-state zero-allocation regression.
"$BUILD/tests/mgg_tests" --gtest_filter='ParallelExec.*'

echo "==> micro_parallel acceptance gate (writes BENCH_parallel.json)"
# Bit-identity across pool widths is always enforced; the >= 2x wall
# gate at 4 workers arms only when the host has >= 4 hardware threads.
"$BUILD/bench/micro_parallel" --json="$BUILD/BENCH_parallel.json"

echo "==> micro_comm acceptance gate"
"$BUILD/bench/micro_comm"

echo "==> micro_wire acceptance gate"
# Compressed frontier pushes: >= 30% modeled byte reduction under
# kAuto at 4 vGPUs with both codecs exercised, results bit-identical
# to raw in both sync modes. Modeled bytes only — no wall-clock gate.
"$BUILD/bench/micro_wire"

echo "==> multi-source + serve differential suites (explicit)"
# Batched traversal bit-identical to individual runs across GPU counts,
# schedules and wire formats, plus the query-service packing / lane /
# reuse suite (docs/architecture.md §13).
"$BUILD/tests/mgg_tests" --gtest_filter='MsBfs.*:Serve.*'

echo "==> serve_throughput acceptance gate"
# >= 3x modeled W+H reduction for one 64-source batch vs the 64
# individual runs it replaces (rmat + social at 4 vGPUs), bit-identical
# per-source answers, batch-tagged trace. Modeled gate only — the
# QPS/latency sweep is informational.
"$BUILD/bench/serve_throughput"

echo "==> serve-layer resilience suites (explicit)"
# Supervisor policy units (backoff, batch-queue ordering, restart /
# quarantine budgets) plus the chaos-facing service behaviors:
# deadlines, lane restart with survivor takeover, admission shedding
# and the lossless-accounting invariant (docs/architecture.md §15).
"$BUILD/tests/mgg_tests" --gtest_filter='Supervisor.*:ServeChaos.*'

echo "==> serve_chaos acceptance gate"
# Faults degrade throughput, never answers: fault-free runs keep every
# resilience counter at zero with bit-identical repeats; scripted +
# seeded chaos loses zero queries, provably restarts and requeues at
# least once, and every answered query matches its fault-free
# individual run; open-loop overload sheds instead of queueing.
"$BUILD/bench/serve_chaos"

echo "==> hierarchy + two-level combine suites (explicit)"
# Interconnect shape validation / link classification / gateway
# election, and flat-vs-two-level bit-identity with the byte-split and
# gateway-counter invariants (docs/architecture.md §14).
"$BUILD/tests/mgg_tests" --gtest_filter='Hierarchy.*:TwoLevel.*'

echo "==> ext_multinode acceptance gate"
# Two-level combine must strictly reduce modeled inter-node bytes vs
# the flat topology on rmat_n22_128 at 2x4 and 4x2, non-vacuously
# (gateway dedup and both codecs engage), with results and item
# counters bit-identical across {flat, two-level} x {BSP, pipeline} x
# {raw, auto}. Modeled bytes only — no wall-clock gate.
"$BUILD/bench/ext_multinode"

echo "==> micro_faults acceptance gate (writes BENCH_faults.json)"
# Non-vacuous recovery gates: grow-and-retry completes a just-enough
# run that throws without it, comm retries recover with backoff
# charged, degraded re-enact is correct on n-1 vGPUs. Prints the
# failing fault plan on a red gate.
"$BUILD/bench/micro_faults" --json="$BUILD/BENCH_faults.json"

echo "==> sec5b sync-mode acceptance gate (writes BENCH_sync.json)"
"$BUILD/bench/sec5b_sync_latency" --json="$BUILD/BENCH_sync.json"

echo "==> tsan: build mgg_tests with -fsanitize=thread"
cmake -B "$TSAN_BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_BUILD" -j --target mgg_tests

echo "==> tsan: core / fault / stream-stress suites"
# The suites defined in core_test.cpp, operator_pipeline_test.cpp,
# fault_test.cpp and stream_stress_test.cpp — the code paths where
# threads actually race (dedup bitmaps and route scratch are touched
# from the enactor's per-GPU threads).
TSAN_FILTER='Message.*:CommBus.*:Frontier.*:Operators.*:Problem.*'
TSAN_FILTER+=':Enactor.*:Oom.*:FaultInjection.*:StreamStress.*'
TSAN_FILTER+=':OperatorPipeline.*:SyncPipeline.*'
# Fault-recovery paths cross threads by design: injector atomics,
# the comm retry loop, the watchdog thread and the regrow replay.
TSAN_FILTER+=':FaultRecovery.*:ChaosTsan.*'
# Tracer observation paths + the Device scale-knob race regression
# (tracer buffers are written from stream workers and drained from the
# barrier-completion thread).
TSAN_FILTER+=':CostModel.*:Trace.*'
# Wire codecs run on the sender/receiver threads (encode at package
# time, decode inside drain) and bump the CommBus wire-stats atomics.
TSAN_FILTER+=':WireFormat.*'
# Host worker pool: chunk claiming, the wake/done protocol, and every
# parallel operator pipeline running with 2-8 pool workers.
TSAN_FILTER+=':ParallelExec.*'
# Serve layer: concurrent lanes enact over one shared PartitionedGraph
# (the new race surface — shared read-only CSR slices, the atomic batch
# queue, the stats mutex, and Tracer batch tags from lane threads).
TSAN_FILTER+=':MsBfs.*:Serve.*'
# Resilience layer: lane threads fail/restart while the supervisor
# mutates shared state, the batch queue re-orders under backoff, the
# open-loop dispatcher admits from its own thread, and per-query
# resolution races are claimed via the single-writer ticket protocol.
TSAN_FILTER+=':Supervisor.*:ServeChaos.*'
# Two-level combine: stage_relay runs on the sender comm streams under
# the relay mutex while flush_relays drains from the closing control
# thread and bumps the link-split/gateway atomics.
TSAN_FILTER+=':TwoLevel.*:Hierarchy.*'
"$TSAN_BUILD/tests/mgg_tests" --gtest_filter="$TSAN_FILTER"

echo "==> check.sh: all green"
