#!/usr/bin/env bash
# Regenerate every paper table/figure into results/ (console output +
# CSVs). Usage: scripts/run_all.sh [build-dir] [suite]
set -euo pipefail

BUILD="${1:-build}"
SUITE="${2:-default}"
OUT=results
mkdir -p "$OUT"

run() {
  local name="$1"
  shift
  echo "==> $name"
  "$BUILD/bench/$name" "$@" --csv="$OUT/$name.csv" | tee "$OUT/$name.txt"
}

run fig2_partitioners
run fig3_memory
run fig4_speedup --suite="$SUITE"
run fig5_scaling
run fig6_graph_types --suite="$SUITE"
run table1_cost_model
run table2_datasets
run table3_incore
run table4_outofcore
run table5_large_ids
run sec5a_comm_volume
run sec5b_sync_latency
run sec6a_direction_sweep
run sec7a_road
run sec7c_apu
run ablation_strategies
run analysis_frontier --json="$OUT/frontier_trace"
run ext_multinode

echo "==> micro_operators"
"$BUILD/bench/micro_operators" --benchmark_min_time=0.05 \
  | tee "$OUT/micro_operators.txt"

echo "all results in $OUT/"
