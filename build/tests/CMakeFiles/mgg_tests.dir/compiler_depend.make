# Empty compiler generated dependencies file for mgg_tests.
# This may be replaced when dependencies are built.
