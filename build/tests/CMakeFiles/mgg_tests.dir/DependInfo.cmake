
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines2_test.cpp" "tests/CMakeFiles/mgg_tests.dir/baselines2_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/baselines2_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/mgg_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/bc_test.cpp" "tests/CMakeFiles/mgg_tests.dir/bc_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/bc_test.cpp.o.d"
  "/root/repo/tests/bfs_test.cpp" "tests/CMakeFiles/mgg_tests.dir/bfs_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/bfs_test.cpp.o.d"
  "/root/repo/tests/cc_test.cpp" "tests/CMakeFiles/mgg_tests.dir/cc_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/cc_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/mgg_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/mgg_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/datasets_test.cpp" "tests/CMakeFiles/mgg_tests.dir/datasets_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/datasets_test.cpp.o.d"
  "/root/repo/tests/directed_test.cpp" "tests/CMakeFiles/mgg_tests.dir/directed_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/directed_test.cpp.o.d"
  "/root/repo/tests/dobfs_test.cpp" "tests/CMakeFiles/mgg_tests.dir/dobfs_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/dobfs_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/mgg_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/mgg_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/mgg_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/mgg_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/load_balance_test.cpp" "tests/CMakeFiles/mgg_tests.dir/load_balance_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/load_balance_test.cpp.o.d"
  "/root/repo/tests/lp_test.cpp" "tests/CMakeFiles/mgg_tests.dir/lp_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/lp_test.cpp.o.d"
  "/root/repo/tests/pagerank_test.cpp" "tests/CMakeFiles/mgg_tests.dir/pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/pagerank_test.cpp.o.d"
  "/root/repo/tests/paper_invariants_test.cpp" "tests/CMakeFiles/mgg_tests.dir/paper_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/paper_invariants_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/mgg_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mgg_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sssp_test.cpp" "tests/CMakeFiles/mgg_tests.dir/sssp_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/sssp_test.cpp.o.d"
  "/root/repo/tests/stream_stress_test.cpp" "tests/CMakeFiles/mgg_tests.dir/stream_stress_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/stream_stress_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/mgg_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/vgpu_test.cpp" "tests/CMakeFiles/mgg_tests.dir/vgpu_test.cpp.o" "gcc" "tests/CMakeFiles/mgg_tests.dir/vgpu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
