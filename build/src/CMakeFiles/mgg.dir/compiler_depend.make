# Empty compiler generated dependencies file for mgg.
# This may be replaced when dependencies are built.
