# Empty dependencies file for mgg.
# This may be replaced when dependencies are built.
