file(REMOVE_RECURSE
  "libmgg.a"
)
