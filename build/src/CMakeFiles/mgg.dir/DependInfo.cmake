
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bfs_2d.cpp" "src/CMakeFiles/mgg.dir/baselines/bfs_2d.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/bfs_2d.cpp.o.d"
  "/root/repo/src/baselines/cpu_reference.cpp" "src/CMakeFiles/mgg.dir/baselines/cpu_reference.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/cpu_reference.cpp.o.d"
  "/root/repo/src/baselines/frog_async.cpp" "src/CMakeFiles/mgg.dir/baselines/frog_async.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/frog_async.cpp.o.d"
  "/root/repo/src/baselines/hardwired_bfs.cpp" "src/CMakeFiles/mgg.dir/baselines/hardwired_bfs.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/hardwired_bfs.cpp.o.d"
  "/root/repo/src/baselines/out_of_core.cpp" "src/CMakeFiles/mgg.dir/baselines/out_of_core.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/out_of_core.cpp.o.d"
  "/root/repo/src/baselines/totem_hybrid.cpp" "src/CMakeFiles/mgg.dir/baselines/totem_hybrid.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/baselines/totem_hybrid.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "src/CMakeFiles/mgg.dir/core/comm.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/core/comm.cpp.o.d"
  "/root/repo/src/core/enactor.cpp" "src/CMakeFiles/mgg.dir/core/enactor.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/core/enactor.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/CMakeFiles/mgg.dir/core/load_balance.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/core/load_balance.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/CMakeFiles/mgg.dir/core/problem.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/core/problem.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/mgg.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/mgg.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/mgg.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/mgg.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/graph/properties.cpp.o.d"
  "/root/repo/src/partition/partitioned_graph.cpp" "src/CMakeFiles/mgg.dir/partition/partitioned_graph.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/partition/partitioned_graph.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/mgg.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/primitives/bc.cpp" "src/CMakeFiles/mgg.dir/primitives/bc.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/bc.cpp.o.d"
  "/root/repo/src/primitives/bfs.cpp" "src/CMakeFiles/mgg.dir/primitives/bfs.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/bfs.cpp.o.d"
  "/root/repo/src/primitives/cc.cpp" "src/CMakeFiles/mgg.dir/primitives/cc.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/cc.cpp.o.d"
  "/root/repo/src/primitives/common.cpp" "src/CMakeFiles/mgg.dir/primitives/common.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/common.cpp.o.d"
  "/root/repo/src/primitives/dobfs.cpp" "src/CMakeFiles/mgg.dir/primitives/dobfs.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/dobfs.cpp.o.d"
  "/root/repo/src/primitives/label_propagation.cpp" "src/CMakeFiles/mgg.dir/primitives/label_propagation.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/label_propagation.cpp.o.d"
  "/root/repo/src/primitives/pagerank.cpp" "src/CMakeFiles/mgg.dir/primitives/pagerank.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/pagerank.cpp.o.d"
  "/root/repo/src/primitives/sssp.cpp" "src/CMakeFiles/mgg.dir/primitives/sssp.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/primitives/sssp.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/mgg.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/util/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/mgg.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/util/log.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/mgg.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/util/options.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mgg.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/util/table.cpp.o.d"
  "/root/repo/src/vgpu/cost.cpp" "src/CMakeFiles/mgg.dir/vgpu/cost.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/cost.cpp.o.d"
  "/root/repo/src/vgpu/interconnect.cpp" "src/CMakeFiles/mgg.dir/vgpu/interconnect.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/interconnect.cpp.o.d"
  "/root/repo/src/vgpu/machine.cpp" "src/CMakeFiles/mgg.dir/vgpu/machine.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/machine.cpp.o.d"
  "/root/repo/src/vgpu/memory.cpp" "src/CMakeFiles/mgg.dir/vgpu/memory.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/memory.cpp.o.d"
  "/root/repo/src/vgpu/stats_io.cpp" "src/CMakeFiles/mgg.dir/vgpu/stats_io.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/stats_io.cpp.o.d"
  "/root/repo/src/vgpu/stream.cpp" "src/CMakeFiles/mgg.dir/vgpu/stream.cpp.o" "gcc" "src/CMakeFiles/mgg.dir/vgpu/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
