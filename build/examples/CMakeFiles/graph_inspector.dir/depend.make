# Empty dependencies file for graph_inspector.
# This may be replaced when dependencies are built.
