file(REMOVE_RECURSE
  "CMakeFiles/graph_inspector.dir/graph_inspector.cpp.o"
  "CMakeFiles/graph_inspector.dir/graph_inspector.cpp.o.d"
  "graph_inspector"
  "graph_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
