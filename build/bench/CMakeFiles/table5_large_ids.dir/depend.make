# Empty dependencies file for table5_large_ids.
# This may be replaced when dependencies are built.
