file(REMOVE_RECURSE
  "CMakeFiles/table5_large_ids.dir/bench_support.cpp.o"
  "CMakeFiles/table5_large_ids.dir/bench_support.cpp.o.d"
  "CMakeFiles/table5_large_ids.dir/table5_large_ids.cpp.o"
  "CMakeFiles/table5_large_ids.dir/table5_large_ids.cpp.o.d"
  "table5_large_ids"
  "table5_large_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_large_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
