file(REMOVE_RECURSE
  "CMakeFiles/sec7c_apu.dir/bench_support.cpp.o"
  "CMakeFiles/sec7c_apu.dir/bench_support.cpp.o.d"
  "CMakeFiles/sec7c_apu.dir/sec7c_apu.cpp.o"
  "CMakeFiles/sec7c_apu.dir/sec7c_apu.cpp.o.d"
  "sec7c_apu"
  "sec7c_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7c_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
