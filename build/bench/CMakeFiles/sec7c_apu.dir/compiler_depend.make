# Empty compiler generated dependencies file for sec7c_apu.
# This may be replaced when dependencies are built.
