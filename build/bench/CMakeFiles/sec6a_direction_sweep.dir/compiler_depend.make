# Empty compiler generated dependencies file for sec6a_direction_sweep.
# This may be replaced when dependencies are built.
