file(REMOVE_RECURSE
  "CMakeFiles/sec6a_direction_sweep.dir/bench_support.cpp.o"
  "CMakeFiles/sec6a_direction_sweep.dir/bench_support.cpp.o.d"
  "CMakeFiles/sec6a_direction_sweep.dir/sec6a_direction_sweep.cpp.o"
  "CMakeFiles/sec6a_direction_sweep.dir/sec6a_direction_sweep.cpp.o.d"
  "sec6a_direction_sweep"
  "sec6a_direction_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6a_direction_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
