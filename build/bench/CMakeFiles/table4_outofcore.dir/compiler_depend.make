# Empty compiler generated dependencies file for table4_outofcore.
# This may be replaced when dependencies are built.
