file(REMOVE_RECURSE
  "CMakeFiles/table4_outofcore.dir/bench_support.cpp.o"
  "CMakeFiles/table4_outofcore.dir/bench_support.cpp.o.d"
  "CMakeFiles/table4_outofcore.dir/table4_outofcore.cpp.o"
  "CMakeFiles/table4_outofcore.dir/table4_outofcore.cpp.o.d"
  "table4_outofcore"
  "table4_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
