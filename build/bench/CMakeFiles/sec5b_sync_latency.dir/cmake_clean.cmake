file(REMOVE_RECURSE
  "CMakeFiles/sec5b_sync_latency.dir/bench_support.cpp.o"
  "CMakeFiles/sec5b_sync_latency.dir/bench_support.cpp.o.d"
  "CMakeFiles/sec5b_sync_latency.dir/sec5b_sync_latency.cpp.o"
  "CMakeFiles/sec5b_sync_latency.dir/sec5b_sync_latency.cpp.o.d"
  "sec5b_sync_latency"
  "sec5b_sync_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5b_sync_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
