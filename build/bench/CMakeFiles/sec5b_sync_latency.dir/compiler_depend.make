# Empty compiler generated dependencies file for sec5b_sync_latency.
# This may be replaced when dependencies are built.
