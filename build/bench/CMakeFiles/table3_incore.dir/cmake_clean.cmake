file(REMOVE_RECURSE
  "CMakeFiles/table3_incore.dir/bench_support.cpp.o"
  "CMakeFiles/table3_incore.dir/bench_support.cpp.o.d"
  "CMakeFiles/table3_incore.dir/table3_incore.cpp.o"
  "CMakeFiles/table3_incore.dir/table3_incore.cpp.o.d"
  "table3_incore"
  "table3_incore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_incore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
