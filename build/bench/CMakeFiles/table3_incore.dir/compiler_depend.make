# Empty compiler generated dependencies file for table3_incore.
# This may be replaced when dependencies are built.
