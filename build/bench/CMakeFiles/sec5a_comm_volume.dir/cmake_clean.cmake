file(REMOVE_RECURSE
  "CMakeFiles/sec5a_comm_volume.dir/bench_support.cpp.o"
  "CMakeFiles/sec5a_comm_volume.dir/bench_support.cpp.o.d"
  "CMakeFiles/sec5a_comm_volume.dir/sec5a_comm_volume.cpp.o"
  "CMakeFiles/sec5a_comm_volume.dir/sec5a_comm_volume.cpp.o.d"
  "sec5a_comm_volume"
  "sec5a_comm_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5a_comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
