# Empty compiler generated dependencies file for sec5a_comm_volume.
# This may be replaced when dependencies are built.
