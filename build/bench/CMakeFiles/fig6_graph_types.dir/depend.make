# Empty dependencies file for fig6_graph_types.
# This may be replaced when dependencies are built.
