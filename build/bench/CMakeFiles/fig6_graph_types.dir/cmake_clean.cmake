file(REMOVE_RECURSE
  "CMakeFiles/fig6_graph_types.dir/bench_support.cpp.o"
  "CMakeFiles/fig6_graph_types.dir/bench_support.cpp.o.d"
  "CMakeFiles/fig6_graph_types.dir/fig6_graph_types.cpp.o"
  "CMakeFiles/fig6_graph_types.dir/fig6_graph_types.cpp.o.d"
  "fig6_graph_types"
  "fig6_graph_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_graph_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
