file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaling.dir/bench_support.cpp.o"
  "CMakeFiles/fig5_scaling.dir/bench_support.cpp.o.d"
  "CMakeFiles/fig5_scaling.dir/fig5_scaling.cpp.o"
  "CMakeFiles/fig5_scaling.dir/fig5_scaling.cpp.o.d"
  "fig5_scaling"
  "fig5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
