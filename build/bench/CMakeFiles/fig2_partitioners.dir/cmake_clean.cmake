file(REMOVE_RECURSE
  "CMakeFiles/fig2_partitioners.dir/bench_support.cpp.o"
  "CMakeFiles/fig2_partitioners.dir/bench_support.cpp.o.d"
  "CMakeFiles/fig2_partitioners.dir/fig2_partitioners.cpp.o"
  "CMakeFiles/fig2_partitioners.dir/fig2_partitioners.cpp.o.d"
  "fig2_partitioners"
  "fig2_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
