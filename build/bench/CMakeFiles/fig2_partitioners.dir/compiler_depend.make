# Empty compiler generated dependencies file for fig2_partitioners.
# This may be replaced when dependencies are built.
