file(REMOVE_RECURSE
  "CMakeFiles/table1_cost_model.dir/bench_support.cpp.o"
  "CMakeFiles/table1_cost_model.dir/bench_support.cpp.o.d"
  "CMakeFiles/table1_cost_model.dir/table1_cost_model.cpp.o"
  "CMakeFiles/table1_cost_model.dir/table1_cost_model.cpp.o.d"
  "table1_cost_model"
  "table1_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
