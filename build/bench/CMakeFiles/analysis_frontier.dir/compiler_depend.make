# Empty compiler generated dependencies file for analysis_frontier.
# This may be replaced when dependencies are built.
