file(REMOVE_RECURSE
  "CMakeFiles/analysis_frontier.dir/analysis_frontier.cpp.o"
  "CMakeFiles/analysis_frontier.dir/analysis_frontier.cpp.o.d"
  "CMakeFiles/analysis_frontier.dir/bench_support.cpp.o"
  "CMakeFiles/analysis_frontier.dir/bench_support.cpp.o.d"
  "analysis_frontier"
  "analysis_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
