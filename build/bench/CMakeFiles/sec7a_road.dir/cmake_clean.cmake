file(REMOVE_RECURSE
  "CMakeFiles/sec7a_road.dir/bench_support.cpp.o"
  "CMakeFiles/sec7a_road.dir/bench_support.cpp.o.d"
  "CMakeFiles/sec7a_road.dir/sec7a_road.cpp.o"
  "CMakeFiles/sec7a_road.dir/sec7a_road.cpp.o.d"
  "sec7a_road"
  "sec7a_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7a_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
