# Empty dependencies file for sec7a_road.
# This may be replaced when dependencies are built.
