// Microbenchmark: host worker-pool speedup on the fused advance, plus
// the bit-identity contract that makes the pool safe to enable
// anywhere (docs/architecture.md §12).
//
// Two workloads, both on an rmat graph across 4 vGPU contexts driven
// from the bench main thread (the enactor's per-slice shape):
//
//  * "scan": BFS-steady-state-shaped advance — every destination is
//    already labeled, so the candidate test fails on every edge and
//    the two-phase pipeline is almost pure parallel phase (edge scan +
//    test). This is the wall-clock workload: best iteration time is
//    measured at 1, 2, and 4 workers.
//  * "emit": relaxation-shaped advance — every edge passes the test
//    and replays through the sequential commit. This stresses the
//    candidate logs and the dedup/output replay; it is the
//    determinism workload (label / frontier / W checksums).
//
// Determinism gates are hard: labels, output frontiers, and the
// device-harvested W counters must be bit-identical across every
// measured width. The >= 2x wall-clock gate at 4 workers is enforced
// only when the host actually has >= 4 hardware threads (CI containers
// with 1-2 cores cannot run 4 workers concurrently, mirroring
// micro_comm's wall-gate policy); the speedup is always reported.
//
// Results are written as machine-readable JSON (--json=PATH, default
// BENCH_parallel.json) for CI trend tracking.
//
// Flags: --scale=N rmat scale (default 13), --ef=N edge factor
// (default 16), --iters=N (default 30), --reps=N (default 3),
// --json=PATH, --csv=PATH.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "core/enactor.hpp"
#include "core/frontier.hpp"
#include "core/operators.hpp"
#include "graph/generators.hpp"
#include "primitives/bfs.hpp"
#include "primitives/common.hpp"
#include "primitives/pagerank.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace mgg;

constexpr int kGpus = 4;
constexpr int kWarmupRounds = 2;
constexpr int kWidths[] = {1, 2, 4};

/// One 4-context advance workload at one pool width.
struct WidthResult {
  double best_iter_s = 1e300;
  double edges_per_iter = 0;          ///< harvested W / iters (scan)
  std::uint64_t work_edges = 0;       ///< harvested W total (emit)
  std::uint64_t label_checksum = 0;   ///< Σ labels after emit rounds
  std::uint64_t frontier_checksum = 0;  ///< Σ output vertices (emit)
  SizeT frontier_size = 0;
};

/// Per-vGPU advance state (the enactor's slice shape, minus the
/// enactor).
struct Ctx {
  core::Frontier frontier;
  util::AtomicBitset dedup;
  util::Array1D<VertexT> temp{"advance_temp"};
  util::Array1D<SizeT> temp_edges{"advance_temp_edges"};
  std::vector<VertexT> labels;
};

WidthResult run_width(const graph::Graph& g, int width, int iters) {
  auto machine = vgpu::Machine::create("k40", kGpus);
  util::ThreadPool& pool = util::ThreadPool::shared();
  pool.set_workers(width);

  std::vector<Ctx> state(kGpus);
  std::vector<core::OpContext> ctxs;
  ctxs.reserve(kGpus);
  std::vector<VertexT> all(g.num_vertices);
  for (VertexT v = 0; v < g.num_vertices; ++v) all[v] = v;
  for (int d = 0; d < kGpus; ++d) {
    Ctx& c = state[d];
    c.frontier.init(machine.device(d), vgpu::AllocationScheme::kPreallocFusion,
                    g.num_vertices, g.num_edges);
    c.dedup.resize(g.num_vertices);
    c.temp.set_allocator(&machine.device(d).memory());
    c.temp_edges.set_allocator(&machine.device(d).memory());
    c.labels.assign(g.num_vertices, 0);
    c.frontier.set_input(all);
    ctxs.push_back(core::OpContext{&machine.device(d), &g, &c.frontier,
                                   &c.temp, &c.temp_edges, &c.dedup,
                                   vgpu::AllocationScheme::kPreallocFusion});
    ctxs.back().pool = width > 1 ? &pool : nullptr;
  }

  WidthResult r;

  // --- "scan" workload: every test fails (labels are all 0, never
  // kInvalidVertex), so the advance is the parallel phase alone. ---
  auto run_scan = [&](int d) {
    Ctx& c = state[d];
    core::advance_filter(
        ctxs[d],
        [&](VertexT, VertexT dst, SizeT) {
          return c.labels[dst] == kInvalidVertex;
        },
        [&](VertexT src, VertexT dst, SizeT) {
          if (c.labels[dst] != kInvalidVertex) return false;
          c.labels[dst] = src;
          return true;
        });
    c.frontier.set_input(all);  // output is empty; re-seed
  };
  for (int it = 0; it < kWarmupRounds; ++it) {
    for (int d = 0; d < kGpus; ++d) run_scan(d);
  }
  for (int d = 0; d < kGpus; ++d) machine.device(d).harvest_iteration();
  util::WallTimer timer;
  for (int it = 0; it < iters; ++it) {
    timer.restart();
    for (int d = 0; d < kGpus; ++d) run_scan(d);
    r.best_iter_s = std::min(r.best_iter_s, timer.seconds());
  }
  std::uint64_t scan_edges = 0;
  for (int d = 0; d < kGpus; ++d) {
    scan_edges += machine.device(d).harvest_iteration().edges;
  }
  r.edges_per_iter = static_cast<double>(scan_edges) / iters;

  // --- "emit" workload: every edge passes and replays through the
  // commit + dedup, exercising the candidate logs. Determinism
  // checksums come from here. ---
  for (int d = 0; d < kGpus; ++d) {
    state[d].labels.assign(g.num_vertices, 0);
    state[d].frontier.set_input(all);
  }
  for (int it = 0; it < 3; ++it) {
    for (int d = 0; d < kGpus; ++d) {
      Ctx& c = state[d];
      core::advance_filter(
          ctxs[d], [&](VertexT, VertexT, SizeT) { return true; },
          [&](VertexT src, VertexT dst, SizeT) {
            c.labels[dst] = src;
            return true;
          });
      c.frontier.swap();
    }
  }
  for (int d = 0; d < kGpus; ++d) {
    Ctx& c = state[d];
    r.work_edges += machine.device(d).harvest_iteration().edges;
    r.frontier_size = c.frontier.input_size();
    c.frontier.for_each_input([&](VertexT v) { r.frontier_checksum += v; });
    for (VertexT v = 0; v < g.num_vertices; ++v) {
      r.label_checksum += static_cast<std::uint64_t>(c.labels[v]) * (v + 1);
    }
  }
  pool.set_workers(1);
  return r;
}

/// Full-primitive bit-identity at 4 vGPUs: BFS labels and PR ranks,
/// plus every deterministic RunStats counter, must match the width-1
/// run exactly at every width (wire=auto so the parallel encoders and
/// batch decode are on the measured path too).
struct PrimitiveIdentity {
  bool bfs_identical = true;
  bool pr_identical = true;
};

bool stats_equal(const vgpu::RunStats& a, const vgpu::RunStats& b) {
  return a.iterations == b.iterations && a.total_edges == b.total_edges &&
         a.total_vertices == b.total_vertices &&
         a.total_comm_items == b.total_comm_items &&
         a.total_combine_items == b.total_combine_items &&
         a.total_comm_bytes == b.total_comm_bytes &&
         a.total_launches == b.total_launches &&
         a.wire_bytes_raw == b.wire_bytes_raw &&
         a.wire_bytes_bitmap == b.wire_bytes_bitmap &&
         a.wire_bytes_delta == b.wire_bytes_delta &&
         a.wire_encode_vertices == b.wire_encode_vertices &&
         a.wire_decode_vertices == b.wire_decode_vertices &&
         a.modeled_total_s() == b.modeled_total_s();
}

PrimitiveIdentity check_primitives(const graph::Graph& g,
                                   std::uint64_t seed) {
  PrimitiveIdentity id;
  core::Config base = bench::config_for_primitive("bfs", kGpus, seed);
  base.wire_format = core::WireFormat::kAuto;

  std::vector<VertexT> bfs_ref;
  vgpu::RunStats bfs_ref_stats;
  std::vector<ValueT> pr_ref;
  vgpu::RunStats pr_ref_stats;
  for (const int threads : {1, 2, 4, 8}) {
    core::Config cfg = base;
    cfg.host_threads = threads;
    auto machine = vgpu::Machine::create("k40", kGpus);
    const auto bfs = prim::run_bfs(g, bench::pick_source(g), machine, cfg);

    core::Config pr_cfg = bench::config_for_primitive("pr", kGpus, seed);
    pr_cfg.wire_format = core::WireFormat::kAuto;
    pr_cfg.host_threads = threads;
    auto pr_machine = vgpu::Machine::create("k40", kGpus);
    prim::PagerankOptions pr_options;
    pr_options.max_iterations = 20;
    const auto pr = prim::run_pagerank(g, pr_machine, pr_cfg, pr_options);

    if (threads == 1) {
      bfs_ref = bfs.labels;
      bfs_ref_stats = bfs.stats;
      pr_ref = pr.rank;
      pr_ref_stats = pr.stats;
      continue;
    }
    id.bfs_identical &= bfs.labels == bfs_ref &&
                        stats_equal(bfs.stats, bfs_ref_stats);
    // Rank equality must be bitwise (memcmp), not float ==, so a NaN
    // divergence cannot slip through.
    id.pr_identical &=
        pr.rank.size() == pr_ref.size() &&
        std::memcmp(pr.rank.data(), pr_ref.data(),
                    pr_ref.size() * sizeof(ValueT)) == 0 &&
        stats_equal(pr.stats, pr_ref_stats);
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options =
      bench::parse_common(argc, argv, {"ef", "iters", "json", "reps", "scale"});
  const int scale = static_cast<int>(options.get_int("scale", 13));
  const double ef = options.get_double("ef", 16);
  const int iters = static_cast<int>(options.get_int("iters", 30));
  const int reps = static_cast<int>(options.get_int("reps", 3));
  const std::string json_path =
      options.get_string("json", "BENCH_parallel.json");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(options.get_int("seed", 1));

  const graph::Graph g = graph::build_undirected(
      graph::make_rmat(scale, ef, graph::RmatParams::gtgraph(), seed));

  constexpr int kNumWidths = 3;
  WidthResult best[kNumWidths];
  for (int w = 0; w < kNumWidths; ++w) {
    for (int rep = 0; rep < reps; ++rep) {
      const WidthResult r = run_width(g, kWidths[w], iters);
      if (rep == 0 || r.best_iter_s < best[w].best_iter_s) best[w] = r;
    }
  }

  util::Table table("micro: host pool, 4-vGPU fused advance (rmat scale " +
                    std::to_string(scale) + ", |V| " +
                    std::to_string(g.num_vertices) + ", |E| " +
                    std::to_string(g.num_edges) + ")");
  table.set_columns({"threads", "edges/iter", "iter ms", "speedup",
                     "W (emit)", "label sum", "frontier sum"},
                    1);
  for (int w = 0; w < kNumWidths; ++w) {
    const WidthResult& r = best[w];
    table.add_row({static_cast<long long>(kWidths[w]),
                   static_cast<long long>(r.edges_per_iter),
                   r.best_iter_s * 1e3,
                   best[0].best_iter_s / r.best_iter_s,
                   static_cast<long long>(r.work_edges),
                   static_cast<long long>(r.label_checksum),
                   static_cast<long long>(r.frontier_checksum)});
  }
  bench::emit(table, options);

  const PrimitiveIdentity id = check_primitives(g, seed);

  // -------------------------------------------------------------------
  // Acceptance gates.
  // -------------------------------------------------------------------
  const double speedup4 = best[0].best_iter_s / best[2].best_iter_s;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool wall_gate_armed = hw >= 4;
  bool deterministic = id.bfs_identical && id.pr_identical;
  for (int w = 1; w < kNumWidths; ++w) {
    deterministic = deterministic &&
                    best[w].work_edges == best[0].work_edges &&
                    best[w].label_checksum == best[0].label_checksum &&
                    best[w].frontier_checksum == best[0].frontier_checksum &&
                    best[w].frontier_size == best[0].frontier_size;
  }
  const bool non_vacuous =
      best[0].edges_per_iter >=
          static_cast<double>(g.num_edges) * (kGpus - 1) &&
      best[0].frontier_size >= g.num_vertices / 2 && best[0].work_edges > 0;
  const bool speedup_ok = !wall_gate_armed || speedup4 >= 2.0;
  const bool ok = deterministic && non_vacuous && speedup_ok;

  if (!wall_gate_armed) {
    std::printf("note: %u hardware thread(s) — the >= 2x wall gate is "
                "reported but not enforced\n", hw);
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("graph").begin_object();
  w.key("scale").value(static_cast<long long>(scale));
  w.key("edge_factor").value(ef);
  w.key("vertices").value(static_cast<unsigned long long>(g.num_vertices));
  w.key("edges").value(static_cast<unsigned long long>(g.num_edges));
  w.end_object();
  w.key("hardware_threads").value(static_cast<unsigned long long>(hw));
  w.key("widths").begin_array();
  for (int i = 0; i < kNumWidths; ++i) {
    const WidthResult& r = best[i];
    w.begin_object();
    w.key("threads").value(static_cast<long long>(kWidths[i]));
    w.key("best_iter_s").value(r.best_iter_s);
    w.key("edges_per_iter").value(r.edges_per_iter);
    w.key("speedup_vs_1").value(best[0].best_iter_s / r.best_iter_s);
    w.key("emit_work_edges").value(
        static_cast<unsigned long long>(r.work_edges));
    w.key("label_checksum").value(
        static_cast<unsigned long long>(r.label_checksum));
    w.key("frontier_checksum").value(
        static_cast<unsigned long long>(r.frontier_checksum));
    w.end_object();
  }
  w.end_array();
  w.key("speedup_at_4").value(speedup4);
  w.key("primitives").begin_object();
  w.key("bfs_identical").value(id.bfs_identical);
  w.key("pr_identical").value(id.pr_identical);
  w.end_object();
  w.key("acceptance").begin_object();
  w.key("wall_gate_armed").value(wall_gate_armed);
  w.key("speedup_ok").value(speedup_ok);
  w.key("deterministic").value(deterministic);
  w.key("non_vacuous").value(non_vacuous);
  w.key("pass").value(ok);
  w.end_object();
  w.end_object();
  w.save(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  std::printf("acceptance (bit-identical across widths%s, non-degenerate "
              "workload): %s\n",
              wall_gate_armed ? ", >= 2x wall at 4 threads" : "",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
