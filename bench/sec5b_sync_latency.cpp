// §V-B: per-iteration synchronization overhead l, and what the
// event-driven pipeline schedule buys back.
//
// The paper measures l by letting each GPU visit only 1 vertex and 1
// edge per iteration (a chain graph) — the smallest per-iteration
// workload possible — and reports average per-iteration times of
// {66.8, 124, 142, 188} us for 1-4 GPUs, with runtime linear in S.
//
// This bench sweeps both superstep schedules (Config::sync_mode):
//   bsp_barrier     two barriers per superstep, serial comm charge
//   event_pipeline  per-peer event handshakes, one barrier, overlap
// over (a) the paper's chain microbenchmark and (b) a comm-heavy
// randomly-partitioned RMAT PageRank, and writes BENCH_sync.json.
//
// Acceptance (exit code 1 on failure, printed at the end): on the
// comm-heavy config the pipeline must model strictly less
// sync+exposed-comm time than the barrier schedule, non-vacuously
// (the barrier run actually communicates, the pipeline actually hides
// a positive fraction of it), with W and H counters bit-identical.
//
// Flags: --chain=N vertices (default 4096), --max-gpus=N,
// --rmat-scale=N (default 10), --json=PATH, --csv=PATH.
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "graph/generators.hpp"
#include "util/json.hpp"

namespace {

struct ModeRow {
  int gpus = 0;
  mgg::vgpu::RunStats stats;
};

void json_mode_entry(mgg::util::JsonWriter& w, const std::string& mode,
                     const ModeRow& row) {
  const auto& s = row.stats;
  w.begin_object();
  w.key("mode").value(mode);
  w.key("gpus").value(static_cast<long long>(row.gpus));
  w.key("iterations").value(static_cast<unsigned long long>(s.iterations));
  w.key("modeled_compute_s").value(s.modeled_compute_s);
  w.key("modeled_comm_s").value(s.modeled_comm_s);
  w.key("modeled_overhead_s").value(s.modeled_overhead_s);
  w.key("modeled_overlap_hidden_s").value(s.modeled_overlap_hidden_s);
  w.key("modeled_total_s").value(s.modeled_total_s());
  w.key("overhead_share").value(
      s.modeled_total_s() > 0 ? s.modeled_overhead_s / s.modeled_total_s()
                              : 0.0);
  w.key("comm_hidden_frac").value(
      s.modeled_comm_s > 0 ? s.modeled_overlap_hidden_s / s.modeled_comm_s
                           : 0.0);
  w.end_object();
}

bool counters_match(const mgg::vgpu::RunStats& a,
                    const mgg::vgpu::RunStats& b) {
  return a.iterations == b.iterations && a.total_edges == b.total_edges &&
         a.total_vertices == b.total_vertices &&
         a.total_launches == b.total_launches &&
         a.total_comm_items == b.total_comm_items &&
         a.total_comm_bytes == b.total_comm_bytes &&
         a.total_combine_items == b.total_combine_items;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"chain", "json", "max-gpus", "rmat-scale"});
  const auto chain_n =
      static_cast<VertexT>(options.get_int("chain", 4096));
  const int max_gpus = static_cast<int>(options.get_int("max-gpus", 6));
  const int rmat_scale = static_cast<int>(options.get_int("rmat-scale", 10));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const std::string json_path =
      options.get_string("json", "BENCH_sync.json");

  const auto chain = graph::build_undirected(graph::make_chain(chain_n));

  util::Table table("Sec. V-B: per-iteration overhead, BFS on a " +
                    std::to_string(chain_n) +
                    "-vertex chain, barrier vs pipeline");
  table.set_columns({"GPUs", "mode", "iterations", "total ms (modeled)",
                     "us per iteration", "paper us/iter"},
                    2);
  const std::vector<double> paper = {66.8, 124, 142, 188};

  std::vector<ModeRow> chain_rows[2];
  for (int gpus = 1; gpus <= max_gpus; ++gpus) {
    for (const auto mode :
         {core::SyncMode::kBspBarrier, core::SyncMode::kEventPipeline}) {
      // Chunk partitioning keeps the chain contiguous so every
      // iteration really does visit exactly one vertex and one edge
      // per GPU.
      auto cfg = bench::config_for_primitive("bfs", gpus, seed);
      cfg.partitioner = "chunk";
      cfg.sync_mode = mode;
      const auto outcome = bench::run_primitive("bfs", chain, "k40", cfg, 1.0);
      const double us_per_iter =
          outcome.stats.modeled_total_s() * 1e6 /
          static_cast<double>(outcome.stats.iterations);
      table.add_row({static_cast<long long>(gpus), core::to_string(mode),
                     static_cast<long long>(outcome.stats.iterations),
                     outcome.modeled_ms, us_per_iter,
                     gpus <= 4 ? paper[gpus - 1] : 0.0});
      chain_rows[mode == core::SyncMode::kEventPipeline ? 1 : 0].push_back(
          {gpus, outcome.stats});
    }
  }
  std::printf("expected: runtime linear in S; a jump from 1 to 2 GPUs "
              "(inter-GPU sync appears), then gradual growth; the pipeline "
              "rows pay one barrier instead of two\n");
  bench::emit(table, options);

  // Comm-heavy acceptance config: randomly-partitioned RMAT PageRank
  // pushes every nonzero border accumulator to its host each
  // iteration — sustained all-to-all traffic for the overlap model to
  // hide under compute.
  const auto rmat = graph::build_undirected(graph::make_rmat(
      rmat_scale, 16, graph::RmatParams::gtgraph(), seed));
  const int heavy_gpus = std::min(4, max_gpus);
  ModeRow heavy[2];
  for (const auto mode :
       {core::SyncMode::kBspBarrier, core::SyncMode::kEventPipeline}) {
    auto cfg = bench::config_for_primitive("pr", heavy_gpus, seed);
    cfg.partitioner = "random";
    cfg.sync_mode = mode;
    const auto outcome = bench::run_primitive("pr", rmat, "k40", cfg, 1.0);
    heavy[mode == core::SyncMode::kEventPipeline ? 1 : 0] = {heavy_gpus,
                                                             outcome.stats};
  }
  const auto& bsp = heavy[0].stats;
  const auto& pipe = heavy[1].stats;

  // Sync + exposed-comm seconds per schedule: what each schedule adds
  // on top of the (identical) compute work.
  const double bsp_exposed = bsp.modeled_overhead_s + bsp.modeled_comm_s;
  const double pipe_exposed = pipe.modeled_overhead_s + pipe.modeled_comm_s -
                              pipe.modeled_overlap_hidden_s;
  const double hidden_frac =
      pipe.modeled_comm_s > 0
          ? pipe.modeled_overlap_hidden_s / pipe.modeled_comm_s
          : 0.0;
  const bool non_vacuous = bsp.modeled_comm_s > 0 && bsp.iterations > 1;
  const bool counters_ok = counters_match(bsp, pipe);
  const bool hides = pipe.modeled_overlap_hidden_s > 0 && hidden_frac > 0;
  const bool faster = pipe_exposed < bsp_exposed;
  const bool ok = non_vacuous && counters_ok && hides && faster;

  std::printf(
      "\ncomm-heavy acceptance (PR, rmat scale %d, random partition, %d "
      "GPUs):\n"
      "  bsp   overhead+comm = %.3f ms\n"
      "  pipe  overhead+comm-hidden = %.3f ms (hidden %.3f ms, %.1f%% of "
      "comm)\n"
      "  counters bit-identical: %s | non-vacuous: %s | hides>0: %s | "
      "strictly less: %s\n"
      "  => %s\n",
      rmat_scale, heavy_gpus, bsp_exposed * 1e3, pipe_exposed * 1e3,
      pipe.modeled_overlap_hidden_s * 1e3, hidden_frac * 100,
      counters_ok ? "yes" : "NO", non_vacuous ? "yes" : "NO",
      hides ? "yes" : "NO", faster ? "yes" : "NO", ok ? "PASS" : "FAIL");

  util::JsonWriter w;
  w.begin_object();
  w.key("chain").begin_object();
  w.key("vertices").value(static_cast<unsigned long long>(chain_n));
  w.key("runs").begin_array();
  for (int m = 0; m < 2; ++m) {
    for (const ModeRow& row : chain_rows[m]) {
      json_mode_entry(w, m == 0 ? "bsp_barrier" : "event_pipeline", row);
    }
  }
  w.end_array();
  w.end_object();
  w.key("comm_heavy").begin_object();
  w.key("primitive").value("pr");
  w.key("rmat_scale").value(static_cast<long long>(rmat_scale));
  w.key("partitioner").value("random");
  w.key("runs").begin_array();
  json_mode_entry(w, "bsp_barrier", heavy[0]);
  json_mode_entry(w, "event_pipeline", heavy[1]);
  w.end_array();
  w.end_object();
  w.key("acceptance").begin_object();
  w.key("counters_identical").value(counters_ok);
  w.key("non_vacuous").value(non_vacuous);
  w.key("hidden_positive").value(hides);
  w.key("pipeline_strictly_less").value(faster);
  w.key("pass").value(ok);
  w.end_object();
  w.end_object();
  w.save(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  return ok ? 0 : 1;
}
