// §V-B: per-iteration synchronization overhead l.
//
// The paper measures l by letting each GPU visit only 1 vertex and 1
// edge per iteration (a chain graph) — the smallest per-iteration
// workload possible — and reports average per-iteration times of
// {66.8, 124, 142, 188} us for 1-4 GPUs, with runtime linear in S.
//
// Flags: --chain=N vertices (default 4096), --max-gpus=N, --csv=PATH.
#include "bench_support.hpp"
#include "graph/generators.hpp"
#include "primitives/bfs.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto chain_n =
      static_cast<VertexT>(options.get_int("chain", 4096));
  const int max_gpus = static_cast<int>(options.get_int("max-gpus", 6));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto g = graph::build_undirected(graph::make_chain(chain_n));

  util::Table table("Sec. V-B: per-iteration overhead, BFS on a " +
                    std::to_string(chain_n) + "-vertex chain");
  table.set_columns({"GPUs", "iterations", "total ms (modeled)",
                     "us per iteration", "paper us/iter"},
                    1);
  const std::vector<double> paper = {66.8, 124, 142, 188};

  for (int gpus = 1; gpus <= max_gpus; ++gpus) {
    // Chunk partitioning keeps the chain contiguous so every iteration
    // really does visit exactly one vertex and one edge per GPU.
    auto cfg = bench::config_for_primitive("bfs", gpus, seed);
    cfg.partitioner = "chunk";
    const auto outcome = bench::run_primitive("bfs", g, "k40", cfg, 1.0);
    const double us_per_iter = outcome.stats.modeled_total_s() * 1e6 /
                               static_cast<double>(outcome.stats.iterations);
    table.add_row({static_cast<long long>(gpus),
                   static_cast<long long>(outcome.stats.iterations),
                   outcome.modeled_ms, us_per_iter,
                   gpus <= 4 ? paper[gpus - 1] : 0.0});
  }
  std::printf("expected: runtime linear in S; a jump from 1 to 2 GPUs "
              "(inter-GPU sync appears), then gradual growth\n");
  bench::emit(table, options);
  return 0;
}
