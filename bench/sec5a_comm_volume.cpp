// §V-A: communication-volume and latency sensitivity.
//
// The paper artificially increases H and finds (1) runtime varies
// linearly with H, (2) DOBFS is hurt more than BFS and PR because its
// W and H are the same scale, and (3) a 10x latency increase makes no
// appreciable difference.
//
// We reproduce both injections through the Interconnect fault knobs:
// a volume-multiplier sweep {1, 2, 4, 8} and a latency x10 run.
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"

namespace {

double run_with_injection(const std::string& primitive,
                          const mgg::graph::Graph& g, int gpus,
                          double scale, double volume_mult,
                          double latency_mult, std::uint64_t seed) {
  using namespace mgg;
  auto cfg = bench::config_for_primitive(primitive, gpus, seed);
  auto machine = vgpu::Machine::create("k40", gpus);
  machine.set_workload_scale(scale);
  // Compose the §V-A injection on top of the scale compensation.
  machine.interconnect().set_volume_multiplier(
      machine.interconnect().volume_multiplier() * volume_mult);
  machine.interconnect().set_latency_multiplier(latency_mult);

  vgpu::RunStats stats;
  if (primitive == "bfs") {
    stats = prim::run_bfs(g, bench::pick_source(g), machine, cfg).stats;
  } else if (primitive == "dobfs") {
    stats = prim::run_dobfs(g, bench::pick_source(g), machine, cfg).stats;
  } else {
    prim::PagerankOptions options;
    options.max_iterations = 20;
    stats = prim::run_pagerank(g, machine, cfg, options).stats;
  }
  return stats.modeled_total_s() * 1e3;
}

}  // namespace

namespace {

// Golden communication volumes at 4 GPUs / seed 1, pinned so any
// change to the message layout or packaging path that alters H (bytes
// or items) fails loudly. BFS and PR goldens predate the flat
// message-layout change and still match bit-identically; the SSSP
// goldens were re-captured when drain order was made deterministic
// (arrival order previously varied run to run, and SSSP's sends depend
// on combine order).
struct GoldenH {
  const char* dataset;
  const char* primitive;
  std::uint64_t bytes;
  std::uint64_t items;
};

constexpr GoldenH kGoldens[] = {
    {"rmat_n22_128", "bfs", 84724, 21181},
    {"rmat_n22_128", "sssp", 384536, 48067},
    {"rmat_n22_128", "pr", 1864192, 233024},
    {"indochina-2004", "bfs", 173488, 43372},
    {"indochina-2004", "sssp", 1556024, 194503},
    {"indochina-2004", "pr", 3817000, 477125},
};

bool check_comm_volume_goldens() {
  using namespace mgg;
  bool ok = true;
  std::string current_dataset;
  graph::Dataset ds;
  for (const GoldenH& golden : kGoldens) {
    if (current_dataset != golden.dataset) {
      ds = graph::build_dataset(golden.dataset, /*seed=*/1);
      current_dataset = golden.dataset;
    }
    const auto cfg = bench::config_for_primitive(golden.primitive, 4, 1);
    const auto outcome =
        bench::run_primitive(golden.primitive, ds.graph, "k40", cfg);
    const bool match = outcome.stats.total_comm_bytes == golden.bytes &&
                       outcome.stats.total_comm_items == golden.items;
    if (!match) {
      ok = false;
      std::fprintf(stderr,
                   "H MISMATCH %s/%s: got bytes=%llu items=%llu, "
                   "expected bytes=%llu items=%llu\n",
                   golden.dataset, golden.primitive,
                   static_cast<unsigned long long>(
                       outcome.stats.total_comm_bytes),
                   static_cast<unsigned long long>(
                       outcome.stats.total_comm_items),
                   static_cast<unsigned long long>(golden.bytes),
                   static_cast<unsigned long long>(golden.items));
    }
  }
  std::printf("comm-volume goldens (4 GPUs, seed 1): %s\n",
              ok ? "all match" : "MISMATCH");
  return ok;
}

// Compressed wire formats must shrink H's byte footprint without
// moving anything else: same results, same item counts, strictly
// fewer bytes. Runs the primitives directly (not run_primitive) so a
// --wire-format override cannot silently turn both sides into the
// same format.
bool check_compressed_formats() {
  using namespace mgg;
  bool ok = true;
  const auto ds = graph::build_dataset("rmat_n22_128", /*seed=*/1);
  const VertexT src = bench::pick_source(ds.graph);
  for (const int gpus : {4, 8}) {
    auto cfg_raw = bench::config_for_primitive("bfs", gpus, 1);
    cfg_raw.wire_format = core::WireFormat::kRawIds;
    auto cfg_auto = cfg_raw;
    cfg_auto.wire_format = core::WireFormat::kAuto;
    auto m_raw = vgpu::Machine::create("k40", gpus);
    auto m_auto = vgpu::Machine::create("k40", gpus);
    const auto raw = prim::run_bfs(ds.graph, src, m_raw, cfg_raw);
    const auto comp = prim::run_bfs(ds.graph, src, m_auto, cfg_auto);
    const bool same_results = raw.labels == comp.labels;
    const bool same_items =
        raw.stats.total_comm_items == comp.stats.total_comm_items &&
        raw.stats.total_edges == comp.stats.total_edges &&
        raw.stats.iterations == comp.stats.iterations;
    const bool fewer_bytes =
        comp.stats.total_comm_bytes < raw.stats.total_comm_bytes;
    if (!(same_results && same_items && fewer_bytes)) {
      ok = false;
      std::fprintf(stderr,
                   "WIRE MISMATCH bfs @%d GPUs: results %s, items %s, "
                   "bytes raw=%llu auto=%llu\n",
                   gpus, same_results ? "match" : "DIFFER",
                   same_items ? "match" : "DIFFER",
                   static_cast<unsigned long long>(
                       raw.stats.total_comm_bytes),
                   static_cast<unsigned long long>(
                       comp.stats.total_comm_bytes));
    }
  }
  std::printf("compressed wire formats (bfs, 4+8 GPUs: identical "
              "results/items, fewer bytes): %s\n",
              ok ? "pass" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  if (!check_comm_volume_goldens()) return 1;
  if (!check_compressed_formats()) return 1;

  const auto ds = graph::build_dataset("rmat_n22_128", seed);
  const double scale = bench::dataset_scale(ds);

  util::Table table("Sec. V-A: runtime (ms) vs injected communication "
                    "volume / latency (" +
                    std::to_string(gpus) + " GPUs, rmat_n22_128)");
  table.set_columns({"primitive", "H x1", "H x2", "H x4", "H x8",
                     "slowdown @x8", "latency x10 / x1"},
                    3);

  for (const std::string primitive : {"bfs", "dobfs", "pr"}) {
    std::vector<double> ms;
    for (const double mult : {1.0, 2.0, 4.0, 8.0}) {
      ms.push_back(run_with_injection(primitive, ds.graph, gpus, scale,
                                      mult, 1.0, seed));
    }
    const double lat10 = run_with_injection(primitive, ds.graph, gpus,
                                            scale, 1.0, 10.0, seed);
    table.add_row({primitive, ms[0], ms[1], ms[2], ms[3], ms[3] / ms[0],
                   lat10 / ms[0]});
  }
  std::printf("expected: runtime linear in H; DOBFS slowdown @x8 largest; "
              "latency x10 ratio ~1.0\n");
  bench::emit(table, options);
  return 0;
}
