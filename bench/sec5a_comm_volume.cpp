// §V-A: communication-volume and latency sensitivity.
//
// The paper artificially increases H and finds (1) runtime varies
// linearly with H, (2) DOBFS is hurt more than BFS and PR because its
// W and H are the same scale, and (3) a 10x latency increase makes no
// appreciable difference.
//
// We reproduce both injections through the Interconnect fault knobs:
// a volume-multiplier sweep {1, 2, 4, 8} and a latency x10 run.
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"

namespace {

double run_with_injection(const std::string& primitive,
                          const mgg::graph::Graph& g, int gpus,
                          double scale, double volume_mult,
                          double latency_mult, std::uint64_t seed) {
  using namespace mgg;
  auto cfg = bench::config_for_primitive(primitive, gpus, seed);
  auto machine = vgpu::Machine::create("k40", gpus);
  machine.set_workload_scale(scale);
  // Compose the §V-A injection on top of the scale compensation.
  machine.interconnect().set_volume_multiplier(
      machine.interconnect().volume_multiplier() * volume_mult);
  machine.interconnect().set_latency_multiplier(latency_mult);

  vgpu::RunStats stats;
  if (primitive == "bfs") {
    stats = prim::run_bfs(g, bench::pick_source(g), machine, cfg).stats;
  } else if (primitive == "dobfs") {
    stats = prim::run_dobfs(g, bench::pick_source(g), machine, cfg).stats;
  } else {
    prim::PagerankOptions options;
    options.max_iterations = 20;
    stats = prim::run_pagerank(g, machine, cfg, options).stats;
  }
  return stats.modeled_total_s() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto ds = graph::build_dataset("rmat_n22_128", seed);
  const double scale = bench::dataset_scale(ds);

  util::Table table("Sec. V-A: runtime (ms) vs injected communication "
                    "volume / latency (" +
                    std::to_string(gpus) + " GPUs, rmat_n22_128)");
  table.set_columns({"primitive", "H x1", "H x2", "H x4", "H x8",
                     "slowdown @x8", "latency x10 / x1"},
                    3);

  for (const std::string primitive : {"bfs", "dobfs", "pr"}) {
    std::vector<double> ms;
    for (const double mult : {1.0, 2.0, 4.0, 8.0}) {
      ms.push_back(run_with_injection(primitive, ds.graph, gpus, scale,
                                      mult, 1.0, seed));
    }
    const double lat10 = run_with_injection(primitive, ds.graph, gpus,
                                            scale, 1.0, 10.0, seed);
    table.add_row({primitive, ms[0], ms[1], ms[2], ms[3], ms[3] / ms[0],
                   lat10 / ms[0]});
  }
  std::printf("expected: runtime linear in H; DOBFS slowdown @x8 largest; "
              "latency x10 ratio ~1.0\n");
  bench::emit(table, options);
  return 0;
}
