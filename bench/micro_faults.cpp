// Micro suite: fault injection + superstep recovery acceptance gates.
//
// Three gates, each earned rather than vacuous:
//
//  * grow-and-retry — a just-enough BFS run with a transient
//    allocation fault at its first run-time allocation *throws
//    kOutOfMemory today* (regrow budget 0, the pre-recovery
//    behavior); the identical run with a regrow budget completes with
//    oom_regrows > 0 and fault-free-identical labels. The counting
//    pass that finds the allocation event index also proves the
//    scenario is real (just-enough actually allocates mid-run).
//
//  * comm retry/backoff — transient transfer faults below the retry
//    budget complete with comm_retries > 0, identical results, and a
//    modeled time that grew by the injected backoff.
//
//  * degraded re-enact — a permanent kernel fault marks a device
//    lost; with Config::degrade_on_device_loss the facade re-runs on
//    n-1 vGPUs and still matches the fault-free labels, recording
//    degraded_reruns = 1.
//
// Results go to --json=PATH (default BENCH_faults.json); a failed
// gate prints the offending fault plan and exits non-zero.
//
// Flags: --scale=N rmat scale (default 12), --gpus=N (default 2),
// --json=PATH, plus the common bench flags.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "graph/generators.hpp"
#include "primitives/bfs.hpp"
#include "primitives/common.hpp"
#include "util/json.hpp"
#include "vgpu/fault.hpp"

namespace {

using namespace mgg;

std::vector<VertexT> enactor_labels(prim::BfsProblem& problem) {
  return prim::gather_vertex_values<VertexT>(
      problem.partitioned(),
      [&](int gpu, VertexT lv) { return problem.data(gpu).labels[lv]; });
}

struct DirectRun {
  std::vector<VertexT> labels;
  vgpu::RunStats stats;
  bool threw_oom = false;
};

/// Build problem + enactor against `machine` and run one BFS. The
/// direct (non-facade) path lets the caller snapshot the injector's
/// per-site counters between reset and enact — that window separates
/// setup-time allocations from run-time ones.
DirectRun direct_bfs(const graph::Graph& g, VertexT src,
                     vgpu::Machine& machine, const core::Config& cfg,
                     vgpu::FaultInjector* counting_base_out_injector,
                     std::uint64_t* base_out) {
  DirectRun out;
  prim::BfsProblem problem;
  problem.init(g, machine, cfg);
  prim::BfsEnactor enactor(problem);
  enactor.reset(src);
  if (counting_base_out_injector != nullptr && base_out != nullptr) {
    *base_out = counting_base_out_injector->alloc_events(0);
  }
  try {
    out.stats = enactor.enact();
    out.labels = enactor_labels(problem);
  } catch (const Error& e) {
    if (e.status() != Status::kOutOfMemory) throw;
    out.threw_oom = true;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options =
      bench::parse_common(argc, argv, {"gpus", "json", "scale"});
  const int scale = static_cast<int>(options.get_int("scale", 12));
  const int gpus = static_cast<int>(options.get_int("gpus", 2));
  const std::string json_path = options.get_string("json", "BENCH_faults.json");

  const graph::Graph g = graph::build_undirected(graph::make_rmat(
      scale, 8, graph::RmatParams::gtgraph(), options.get_int("seed", 1)));
  const VertexT src = bench::pick_source(g);

  core::Config cfg;
  cfg.num_gpus = gpus;
  cfg.scheme = vgpu::AllocationScheme::kJustEnough;

  // -------------------------------------------------------------------
  // Gate 1: grow-and-retry. Counting pass discovers the first run-time
  // allocation event on device 0 (and proves there is one).
  // -------------------------------------------------------------------
  auto fault_free_machine = vgpu::Machine::create("k40", gpus);
  const DirectRun fault_free =
      direct_bfs(g, src, fault_free_machine, cfg, nullptr, nullptr);

  auto counting_machine = vgpu::Machine::create("k40", gpus);
  vgpu::FaultInjector counting(vgpu::FaultPlan{}, gpus);
  counting_machine.set_fault_injector(&counting);
  std::uint64_t base = 0;
  direct_bfs(g, src, counting_machine, cfg, &counting, &base);
  const bool midrun_allocs = counting.alloc_events(0) > base;

  vgpu::FaultSpec oom_spec;
  oom_spec.kind = vgpu::FaultKind::kAllocTransient;
  oom_spec.device = 0;
  oom_spec.at_event = base;
  oom_spec.count = 1;
  vgpu::FaultPlan oom_plan;
  oom_plan.specs.push_back(oom_spec);

  // Without a regrow budget the fault is fatal (the pre-recovery
  // behavior this gate pins as "throws today").
  auto no_budget_machine = vgpu::Machine::create("k40", gpus);
  vgpu::FaultInjector no_budget_injector(oom_plan, gpus);
  no_budget_machine.set_fault_injector(&no_budget_injector);
  const DirectRun no_budget =
      direct_bfs(g, src, no_budget_machine, cfg, nullptr, nullptr);

  core::Config regrow_cfg = cfg;
  regrow_cfg.max_oom_regrows = 2;
  auto regrow_machine = vgpu::Machine::create("k40", gpus);
  vgpu::FaultInjector regrow_injector(oom_plan, gpus);
  regrow_machine.set_fault_injector(&regrow_injector);
  const DirectRun regrow =
      direct_bfs(g, src, regrow_machine, regrow_cfg, nullptr, nullptr);

  const bool regrow_ok = midrun_allocs && no_budget.threw_oom &&
                         !regrow.threw_oom && regrow.stats.oom_regrows > 0 &&
                         regrow.labels == fault_free.labels;

  // -------------------------------------------------------------------
  // Gate 2: comm retry/backoff.
  // -------------------------------------------------------------------
  vgpu::FaultSpec retry_spec;
  retry_spec.kind = vgpu::FaultKind::kTransferTransient;
  retry_spec.device = 0;
  retry_spec.peer = gpus > 1 ? 1 : 0;
  retry_spec.at_event = 0;
  retry_spec.count = 2;  // below Config::max_comm_retries
  vgpu::FaultPlan retry_plan;
  retry_plan.specs.push_back(retry_spec);
  auto retry_machine = vgpu::Machine::create("k40", gpus);
  vgpu::FaultInjector retry_injector(retry_plan, gpus);
  retry_machine.set_fault_injector(&retry_injector);
  const DirectRun retried =
      direct_bfs(g, src, retry_machine, cfg, nullptr, nullptr);

  const bool retry_ok =
      !retried.threw_oom && retried.stats.comm_retries > 0 &&
      retried.labels == fault_free.labels &&
      retried.stats.modeled_total_s() >= fault_free.stats.modeled_total_s();

  // -------------------------------------------------------------------
  // Gate 3: degraded re-enact on permanent device loss (facade path).
  // -------------------------------------------------------------------
  const auto golden = prim::run_bfs(g, src, fault_free_machine, cfg);

  vgpu::FaultSpec loss_spec;
  loss_spec.kind = vgpu::FaultKind::kKernelFault;
  loss_spec.device = gpus - 1;
  loss_spec.at_event = 0;
  vgpu::FaultPlan loss_plan;
  loss_plan.specs.push_back(loss_spec);
  core::Config degrade_cfg = cfg;
  degrade_cfg.degrade_on_device_loss = true;
  auto loss_machine = vgpu::Machine::create("k40", gpus);
  vgpu::FaultInjector loss_injector(loss_plan, gpus);
  loss_machine.set_fault_injector(&loss_injector);
  bool degraded_ok = false;
  std::uint64_t degraded_reruns = 0;
  if (gpus > 1) {
    const auto degraded = prim::run_bfs(g, src, loss_machine, degrade_cfg);
    degraded_reruns = degraded.stats.degraded_reruns;
    degraded_ok =
        degraded.labels == golden.labels && degraded_reruns == 1;
  } else {
    degraded_ok = true;  // nothing to degrade to on one vGPU
  }

  const bool ok = regrow_ok && retry_ok && degraded_ok;

  std::printf(
      "grow-and-retry: midrun allocs %s, no-budget run %s, regrown run "
      "oom_regrows=%llu labels %s  ->  %s\n",
      midrun_allocs ? "yes" : "NO",
      no_budget.threw_oom ? "threw (as today)" : "DID NOT THROW",
      static_cast<unsigned long long>(regrow.stats.oom_regrows),
      regrow.labels == fault_free.labels ? "match" : "MISMATCH",
      regrow_ok ? "pass" : "FAIL");
  std::printf(
      "comm retry/backoff: comm_retries=%llu labels %s modeled %s  ->  %s\n",
      static_cast<unsigned long long>(retried.stats.comm_retries),
      retried.labels == fault_free.labels ? "match" : "MISMATCH",
      retried.stats.modeled_total_s() >= fault_free.stats.modeled_total_s()
          ? ">= fault-free"
          : "< fault-free",
      retry_ok ? "pass" : "FAIL");
  std::printf("degraded re-enact: degraded_reruns=%llu  ->  %s\n",
              static_cast<unsigned long long>(degraded_reruns),
              degraded_ok ? "pass" : "FAIL");
  if (!ok) {
    std::printf("failing plans: oom=[%s] retry=[%s] loss=[%s]\n",
                oom_plan.to_string().c_str(), retry_plan.to_string().c_str(),
                loss_plan.to_string().c_str());
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("graph").begin_object();
  w.key("scale").value(static_cast<long long>(scale));
  w.key("vertices").value(static_cast<unsigned long long>(g.num_vertices));
  w.key("edges").value(static_cast<unsigned long long>(g.num_edges));
  w.key("gpus").value(static_cast<long long>(gpus));
  w.end_object();
  w.key("grow_and_retry").begin_object();
  w.key("midrun_allocs").value(midrun_allocs);
  w.key("no_budget_threw").value(no_budget.threw_oom);
  w.key("oom_regrows").value(
      static_cast<unsigned long long>(regrow.stats.oom_regrows));
  w.key("faults_injected").value(
      static_cast<unsigned long long>(regrow.stats.faults_injected));
  w.key("labels_match").value(regrow.labels == fault_free.labels);
  w.key("pass").value(regrow_ok);
  w.end_object();
  w.key("comm_retry").begin_object();
  w.key("comm_retries").value(
      static_cast<unsigned long long>(retried.stats.comm_retries));
  w.key("modeled_total_s").value(retried.stats.modeled_total_s());
  w.key("fault_free_modeled_total_s").value(
      fault_free.stats.modeled_total_s());
  w.key("labels_match").value(retried.labels == fault_free.labels);
  w.key("pass").value(retry_ok);
  w.end_object();
  w.key("degraded_reenact").begin_object();
  w.key("degraded_reruns").value(
      static_cast<unsigned long long>(degraded_reruns));
  w.key("pass").value(degraded_ok);
  w.end_object();
  w.key("pass").value(ok);
  w.end_object();
  w.save(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  std::printf("acceptance (grow-and-retry recovers, comm retries recover, "
              "degraded re-enact correct): %s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
