// Analysis: per-iteration frontier evolution and time breakdown for
// BFS vs DOBFS — the §VI-A mechanics made visible.
//
// For a power-law graph, plain BFS's frontier explodes at level 2-3
// (touching most of |E|), which is exactly where DOBFS switches to the
// backward direction and the per-iteration edge work collapses to the
// unvisited scan. The per-iteration records also break modeled time
// into compute / communication / synchronization, showing DOBFS's
// communication-bound profile.
//
// Flags: --gpus=N (default 4), --dataset=NAME, --csv=PATH,
//        --json=PREFIX (writes PREFIX.bfs.json / PREFIX.dobfs.json
//        with the full per-iteration trace).
#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/dobfs.hpp"
#include "vgpu/stats_io.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"dataset", "gpus", "json"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const auto name = options.get_string("dataset", "soc-orkut");

  const auto ds = graph::build_dataset(name, seed);
  const double scale = bench::dataset_scale(ds);
  const VertexT src = bench::pick_source(ds.graph);

  util::Table table("Frontier evolution: BFS vs DOBFS on " + name + " (" +
                    std::to_string(gpus) + " GPUs)");
  table.set_columns({"primitive", "iter", "frontier", "edge work",
                     "H items", "compute ms", "comm ms", "sync ms"},
                    3);

  for (const std::string primitive : {"bfs", "dobfs"}) {
    auto cfg = bench::config_for_primitive(primitive, gpus, seed);
    auto machine = vgpu::Machine::create("k40", gpus);
    machine.set_workload_scale(scale);

    std::vector<vgpu::IterationRecord> records;
    vgpu::RunStats stats;
    if (primitive == "bfs") {
      prim::BfsProblem problem;
      problem.init(ds.graph, machine, cfg);
      prim::BfsEnactor enactor(problem);
      enactor.reset(src);
      stats = enactor.enact();
      records = enactor.iteration_records();
    } else {
      prim::DobfsProblem problem;
      problem.init(ds.graph, machine, cfg);
      prim::DobfsEnactor enactor(problem);
      enactor.reset(src);
      stats = enactor.enact();
      records = enactor.iteration_records();
    }
    const std::string json_prefix = options.get_string("json", "");
    if (!json_prefix.empty()) {
      vgpu::save_run_stats_json(json_prefix + "." + primitive + ".json",
                                stats, records);
    }
    for (const auto& r : records) {
      table.add_row({primitive, static_cast<long long>(r.iteration),
                     static_cast<long long>(r.frontier_total),
                     static_cast<long long>(r.edges),
                     static_cast<long long>(r.comm_items),
                     r.compute_s * 1e3, r.comm_s * 1e3,
                     r.overhead_s * 1e3});
    }
  }
  bench::emit(table, options);
  return 0;
}
