// Ablation: the §III-C design axes, isolated one at a time on BFS.
//
//   (a) communication strategy: selective vs broadcast — broadcasting
//       "saves the work required to split the frontier, but consumes
//       more memory and communication bandwidth";
//   (b) vertex duplication: duplicate-all vs duplicate-1-hop — 1-hop
//       "uses less memory space, but requires ID conversion";
//   (c) kernel fusion (§VI-C): the fused scheme vs the split pipeline
//       at identical buffer sizing.
//
// Reported per variant: modeled time, communicated items (H), and
// summed peak device memory.
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include "bench_support.hpp"
#include "primitives/bfs.hpp"

namespace {

struct Variant {
  const char* name;
  mgg::core::CommStrategy comm;
  mgg::part::Duplication dup;
  mgg::vgpu::AllocationScheme scheme;
  const char* partitioner = "random";
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const std::vector<Variant> variants = {
      {"selective + dup-all + fused", core::CommStrategy::kSelective,
       part::Duplication::kAll, vgpu::AllocationScheme::kPreallocFusion},
      {"broadcast + dup-all + fused", core::CommStrategy::kBroadcast,
       part::Duplication::kAll, vgpu::AllocationScheme::kPreallocFusion},
      {"selective + dup-1hop + fused", core::CommStrategy::kSelective,
       part::Duplication::kOneHop,
       vgpu::AllocationScheme::kPreallocFusion},
      {"selective + dup-all + split", core::CommStrategy::kSelective,
       part::Duplication::kAll, vgpu::AllocationScheme::kFixedPrealloc},
      // 1-hop's memory advantage needs a locality-aware partitioner:
      // under random partitioning of a power-law graph, nearly every
      // vertex borders every part, so V_i ~ V anyway.
      {"sel + dup-1hop + fused + chunk", core::CommStrategy::kSelective,
       part::Duplication::kOneHop, vgpu::AllocationScheme::kPreallocFusion,
       "chunk"},
  };

  util::Table table("Ablation: BFS design axes on " +
                    std::to_string(gpus) + " GPUs");
  table.set_columns({"variant", "dataset", "modeled ms", "H items",
                     "peak MB", "launches"},
                    2);

  for (const char* dataset : {"soc-orkut", "uk-2002"}) {
    const auto ds = graph::build_dataset(dataset, seed);
    const double scale = bench::dataset_scale(ds);
    for (const auto& variant : variants) {
      core::Config cfg;
      cfg.num_gpus = gpus;
      cfg.seed = seed;
      cfg.comm = variant.comm;
      cfg.duplication = variant.dup;
      cfg.scheme = variant.scheme;
      cfg.partitioner = variant.partitioner;

      auto machine = vgpu::Machine::create("k40", gpus);
      machine.set_workload_scale(scale);
      prim::BfsProblem problem;
      problem.init(ds.graph, machine, cfg);
      prim::BfsEnactor enactor(problem);
      enactor.reset(bench::pick_source(ds.graph));
      const auto stats = enactor.enact();

      std::size_t peak = 0;
      for (int gpu = 0; gpu < gpus; ++gpu) {
        peak += machine.device(gpu).memory().peak_bytes();
      }
      table.add_row({variant.name, dataset,
                     stats.modeled_total_s() * 1e3,
                     static_cast<long long>(stats.total_comm_items),
                     static_cast<double>(peak) / (1 << 20),
                     static_cast<long long>(stats.total_launches)});
    }
  }
  std::printf("expected: broadcast raises H and time; dup-1hop cuts peak "
              "memory; the split pipeline adds launches and memory\n");
  bench::emit(table, options);
  return 0;
}
