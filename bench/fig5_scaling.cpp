// Fig. 5: strong and weak scaling of DOBFS, BFS, and PR in GTEPS on
// the K80 and P100 machines, 1-8 GPUs.
//
// The paper's workloads (scaled here by 2^-9 in vertex count, with the
// full-size workload modeled via the workload-scale knob):
//   strong       — rmat with 2^24 vertices, edge factor 32 (fixed)
//   weak edge    — rmat with 2^19 vertices, edge factor 256 x |GPUs|
//   weak vertex  — rmat with 2^19 x |GPUs| vertices, edge factor 256
//
// Expected shapes: DOBFS flat in strong scaling (communication bound,
// worse on P100 where compute got faster but the bus did not), BFS and
// PR near-linear in both strong and weak scaling.
//
// Flags: --max-gpus=N (default 8), --csv=PATH.
#include <cstdio>

#include "bench_support.hpp"
#include "graph/generators.hpp"

namespace {

constexpr int kScaleReduction = 9;  // 2^-9 of the paper's vertex counts

mgg::graph::Graph scaled_rmat(int paper_scale, double edge_factor,
                              std::uint64_t seed) {
  return mgg::graph::build_undirected(mgg::graph::make_rmat(
      paper_scale - kScaleReduction, edge_factor,
      mgg::graph::RmatParams::gtgraph(), seed));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"max-gpus"});
  const int max_gpus = static_cast<int>(options.get_int("max-gpus", 8));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const double ws = static_cast<double>(1u << kScaleReduction);

  const std::vector<std::string> primitives = {"dobfs", "bfs", "pr"};
  const std::vector<std::string> models = {"k80", "p100"};

  util::Table table("Fig. 5: DOBFS/BFS/PR scaling, GTEPS");
  std::vector<std::string> cols = {"primitive", "mode", "gpu"};
  for (int g = 1; g <= max_gpus; ++g) cols.push_back(std::to_string(g));
  table.set_columns(cols, 1);

  for (const auto& primitive : primitives) {
    for (const std::string mode : {"strong", "weak-edge", "weak-vertex"}) {
      for (const auto& model : models) {
        std::vector<util::Cell> row = {primitive, std::string(mode), model};
        for (int gpus = 1; gpus <= max_gpus; ++gpus) {
          graph::Graph g;
          if (mode == "strong") {
            g = scaled_rmat(24, 32, seed);
          } else if (mode == "weak-edge") {
            g = scaled_rmat(19, 256.0 * gpus, seed);
          } else {
            // weak-vertex: 2^19 x gpus vertices. Approximate the x|GPUs|
            // factor by bumping the scale for powers of two and adjusting
            // the edge factor for the remainder.
            int extra = 0;
            int rem = gpus;
            while (rem >= 2) {
              rem /= 2;
              ++extra;
            }
            const double adjust =
                static_cast<double>(gpus) / static_cast<double>(1 << extra);
            g = scaled_rmat(19 + extra, 256.0 * adjust, seed);
          }
          auto cfg = bench::config_for_primitive(primitive, gpus, seed);
          const auto outcome =
              bench::run_primitive(primitive, g, model, cfg, ws);
          // PR touches every edge each iteration; its GTEPS counts
          // total edges traversed (the paper's Fig. 5c convention —
          // otherwise PR rates would be ~S x lower than shown there).
          double gteps = outcome.gteps;
          if (primitive == "pr") {
            gteps *= static_cast<double>(outcome.stats.iterations);
          }
          row.push_back(gteps);
        }
        table.add_row(std::move(row));
      }
    }
    std::printf("  %s done\n", primitive.c_str());
  }
  bench::emit(table, options);
  return 0;
}
