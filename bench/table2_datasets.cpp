// Table II: the dataset inventory — paper-reported |V|, |E|, D next to
// the generated synthetic analog's measured values and the implied
// workload-scale factor used by the other benches.
//
// Flags: --family=soc|web|rmat|... (default: Table II families),
//        --full (include comparison-table extras), --csv=PATH.
#include "bench_support.hpp"
#include "graph/properties.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"family", "full"});
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const auto family = options.get_string("family", "");
  const bool full = options.get_bool("full", false);

  std::vector<std::string> names;
  if (!family.empty()) {
    names = graph::datasets_in_family(family);
  } else if (full) {
    names = graph::datasets_in_family();  // everything registered
  } else {
    names = graph::table2_suite();
  }

  util::Table table("Table II: datasets (paper vs generated analog)");
  table.set_columns({"dataset", "family", "paper |V|", "paper |E|",
                     "paper D", "analog |V|", "analog |E|", "analog D~",
                     "deg", "scale"},
                    1);

  for (const auto& name : names) {
    const auto ds = graph::build_dataset(name, seed);
    const auto& g = ds.graph;
    const double diameter = graph::estimate_diameter(g, 6, seed);
    table.add_row({name, ds.spec.family,
                   ds.spec.paper_vertices / 1e6,  // millions
                   ds.spec.paper_edges / 1e6, ds.spec.paper_diameter,
                   static_cast<long long>(g.num_vertices),
                   static_cast<long long>(g.num_edges), diameter,
                   g.average_degree(), bench::dataset_scale(ds)});
  }
  std::printf("paper |V|/|E| in millions; analog D~ from random-source "
              "BFS (as the paper's rmat rows)\n");
  bench::emit(table, options);
  return 0;
}
