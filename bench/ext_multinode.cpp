// Extension (§VIII future work): scale-up vs scale-out, and the
// two-level combine gate.
//
// The paper's concluding question: "can we achieve further scalability
// with multiple nodes, and given the increased latency and decreased
// bandwidth of those nodes, is it profitable to do so?" — and its
// §VII-C position that results "motivate a future focus on scaling up
// (fewer but more powerful nodes, each with more GPUs) in preference
// to scaling out."
//
// The node hierarchy is first-class in the core (vgpu::Interconnect
// node metadata + Config::two_level_combine; docs/architecture.md
// §14), so this bench both reproduces the scale-up-vs-scale-out table
// (BFS / DOBFS / PR on 8 GPUs as 1x8, 2x4, 4x2 with an
// InfiniBand-class inter-node link, plus the 4-GPU reference) and exit
// gates the two-level combine:
//
//  * per (topology, primitive), results and every item-shaped counter
//    are bit-identical across {flat, two-level} x {BSP, pipeline} x
//    {raw, auto} — staging through the gateways must not change one
//    answer or one communicated/combined item;
//  * intra_node_bytes + inter_node_bytes == total_comm_bytes and the
//    per-format wire byte split sums to total_comm_bytes, in every
//    cell;
//  * two-level reduces modeled inter-node bytes vs the flat path —
//    strictly in every kAuto cell (the gateway re-encode always wins)
//    and in every BFS/PR cell including raw (their selective pushes
//    overlap across a node's senders, so the dedup alone shrinks the
//    merged payload); DOBFS broadcast chunks are owner-disjoint, so
//    its raw cells may only tie (never grow). Non-vacuity per
//    topology: the flat baselines ship inter-node bytes, the gateways
//    dedup (gateway_dedup_items > 0), and the two-level kAuto cells
//    exercise BOTH compressed codecs.
//
// Flags: --csv=PATH, --seed=N.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"

namespace {

using namespace mgg;

// kAuto knobs for the gate cells: dense frontiers give the ascending
// sequences the bitmap codec needs, and the relaxed density switch
// point keeps it engaged at 8-way bucket fan-out (1/16 is tuned for 4
// vGPUs; an 8-GPU bucket holds half the vertices per peer).
constexpr double kDenseThreshold = 0.05;
constexpr double kWireDensity = 0.02;

struct Shape {
  const char* name;
  int gpus_per_node;
  int nodes;
};

struct Cell {
  std::vector<VertexT> labels;  // bfs / dobfs
  std::vector<VertexT> preds;
  std::vector<ValueT> rank;  // pr
  vgpu::RunStats stats;
};

/// One primitive run on `machine` (by reference — a Machine deep-copy
/// per cell would clone every device, stream, and the interconnect).
/// The workload scale is reset explicitly per run: it is per-machine
/// state and a previous caller may have left a different value.
Cell run_on(vgpu::Machine& machine, const std::string& primitive,
            const graph::Graph& g, double scale, core::Config cfg) {
  machine.set_workload_scale(scale);
  Cell cell;
  if (primitive == "bfs") {
    auto r = prim::run_bfs(g, bench::pick_source(g), machine, cfg);
    cell.labels = std::move(r.labels);
    cell.preds = std::move(r.preds);
    cell.stats = r.stats;
  } else if (primitive == "dobfs") {
    auto r = prim::run_dobfs(g, bench::pick_source(g), machine, cfg);
    cell.labels = std::move(r.labels);
    cell.preds = std::move(r.preds);
    cell.stats = r.stats;
  } else {
    prim::PagerankOptions options;
    options.max_iterations = 20;
    auto r = prim::run_pagerank(g, machine, cfg, options);
    cell.rank = std::move(r.rank);
    cell.stats = r.stats;
  }
  return cell;
}

core::Config cell_config(const std::string& primitive, int num_gpus,
                         std::uint64_t seed, core::SyncMode mode,
                         core::WireFormat wf, bool two_level) {
  auto cfg = bench::config_for_primitive(primitive, num_gpus, seed);
  cfg.sync_mode = mode;
  cfg.wire_format = wf;
  cfg.two_level_combine = two_level;
  cfg.dense_threshold = kDenseThreshold;  // only dense-capable prims honor it
  cfg.wire_density_threshold = kWireDensity;
  return cfg;
}

bool check(bool ok, const char* what, const std::string& label) {
  if (!ok) std::fprintf(stderr, "FAIL [%s]: %s\n", label.c_str(), what);
  return ok;
}

bool same_items(const Cell& a, const Cell& b) {
  return a.stats.iterations == b.stats.iterations &&
         a.stats.total_edges == b.stats.total_edges &&
         a.stats.total_comm_items == b.stats.total_comm_items &&
         a.stats.total_combine_items == b.stats.total_combine_items;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto ds = graph::build_dataset("rmat_n22_128", seed);
  const double scale = bench::dataset_scale(ds);
  const graph::Graph& g = ds.graph;

  bool ok = true;
  bool gate_earned = false;

  // --- Part 1: the two-level combine gate on the cluster shapes. ---
  util::Table gate_table(
      "two-level combine: modeled inter-node bytes, flat vs staged "
      "(rmat_n22_128)");
  gate_table.set_columns({"topology", "primitive", "mode", "format",
                          "flat inter B", "2-level inter B", "saved %",
                          "dedup items"},
                         1);

  const Shape shapes[] = {{"2x4", 4, 2}, {"4x2", 2, 4}};
  for (const Shape& shape : shapes) {
    // Per-topology non-vacuity aggregates across the cell matrix.
    std::uint64_t shape_flat_inter = 0, shape_two_inter = 0;
    std::uint64_t shape_dedup = 0, shape_bitmap = 0, shape_delta = 0;
    for (const std::string primitive : {"bfs", "dobfs", "pr"}) {
      const int n = shape.gpus_per_node * shape.nodes;
      const Cell* baseline = nullptr;
      std::vector<Cell> cells;
      cells.reserve(8);
      for (const core::SyncMode mode :
           {core::SyncMode::kBspBarrier, core::SyncMode::kEventPipeline}) {
        for (const core::WireFormat wf :
             {core::WireFormat::kRawIds, core::WireFormat::kAuto}) {
          Cell flat, two;
          {
            auto machine = vgpu::Machine::create_cluster(
                "k40", shape.gpus_per_node, shape.nodes);
            flat = run_on(machine, primitive, g, scale,
                          cell_config(primitive, n, seed, mode, wf, false));
          }
          {
            auto machine = vgpu::Machine::create_cluster(
                "k40", shape.gpus_per_node, shape.nodes);
            two = run_on(machine, primitive, g, scale,
                         cell_config(primitive, n, seed, mode, wf, true));
          }
          const std::string label = std::string(shape.name) + "/" +
                                    primitive + "/" + to_string(mode) +
                                    "/" + to_string(wf);
          // Per-cell accounting invariants, both paths.
          for (const Cell* c : {&flat, &two}) {
            const auto& s = c->stats;
            ok &= check(s.intra_node_bytes + s.inter_node_bytes ==
                            s.total_comm_bytes,
                        "link-class split does not sum to total bytes",
                        label);
            ok &= check(s.wire_bytes_raw + s.wire_bytes_bitmap +
                                s.wire_bytes_delta ==
                            s.total_comm_bytes,
                        "per-format byte split does not sum to total",
                        label);
          }
          ok &= check(flat.stats.gateway_merges == 0 &&
                          flat.stats.gateway_dedup_items == 0,
                      "flat run performed gateway merges", label);
          // The headline gate: staging must reduce inter-node bytes,
          // on a baseline that actually crossed the slow link, with
          // the gateways actually deduping.
          ok &= check(flat.stats.inter_node_bytes > 0,
                      "gate is vacuous: flat run shipped no inter-node "
                      "bytes",
                      label);
          ok &= check(two.stats.gateway_merges > 0,
                      "gate is vacuous: no gateway merges engaged", label);
          // Strict reduction wherever it is structurally guaranteed:
          // the re-encode wins in every kAuto cell; BFS/PR selective
          // pushes overlap across a node's senders, so their dedup
          // shrinks even the raw merged payload. DOBFS broadcast
          // chunks are owner-disjoint — its raw merge may only tie.
          const bool dedups = primitive != "dobfs";
          if (dedups) {
            ok &= check(two.stats.gateway_dedup_items > 0,
                        "gateway dedup never removed an item", label);
          }
          if (dedups || wf == core::WireFormat::kAuto) {
            ok &= check(
                two.stats.inter_node_bytes < flat.stats.inter_node_bytes,
                "two-level did not reduce inter-node bytes", label);
          } else {
            ok &= check(
                two.stats.inter_node_bytes <= flat.stats.inter_node_bytes,
                "two-level grew inter-node bytes", label);
          }
          shape_flat_inter += flat.stats.inter_node_bytes;
          shape_two_inter += two.stats.inter_node_bytes;
          shape_dedup += two.stats.gateway_dedup_items;
          if (wf == core::WireFormat::kAuto) {
            shape_bitmap += two.stats.wire_bytes_bitmap;
            shape_delta += two.stats.wire_bytes_delta;
          }
          const double saved =
              flat.stats.inter_node_bytes == 0
                  ? 0.0
                  : 1.0 - static_cast<double>(two.stats.inter_node_bytes) /
                              static_cast<double>(
                                  flat.stats.inter_node_bytes);
          gate_table.add_row(
              {std::string(shape.name), primitive,
               std::string(to_string(mode)), std::string(to_string(wf)),
               static_cast<long long>(flat.stats.inter_node_bytes),
               static_cast<long long>(two.stats.inter_node_bytes),
               saved * 100,
               static_cast<long long>(two.stats.gateway_dedup_items)});
          gate_earned = true;
          cells.push_back(std::move(flat));
          cells.push_back(std::move(two));
        }
      }
      // Bit-identity across all 8 cells of this (topology, primitive):
      // answers and item-shaped counters must not depend on schedule,
      // wire format, or staging.
      baseline = &cells.front();
      for (std::size_t i = 1; i < cells.size(); ++i) {
        const std::string label = std::string(shape.name) + "/" +
                                  primitive + "/cell" + std::to_string(i);
        ok &= check(cells[i].labels == baseline->labels &&
                        cells[i].preds == baseline->preds &&
                        cells[i].rank == baseline->rank,
                    "results differ across the cell matrix", label);
        ok &= check(same_items(cells[i], *baseline),
                    "item-shaped counters differ across the cell matrix",
                    label);
      }
    }
    // Per-topology non-vacuity: across the whole matrix the staged
    // path must win outright, the gateways must have deduped, and the
    // kAuto cells must have exercised both compressed codecs.
    ok &= check(shape_two_inter < shape_flat_inter,
                "two-level did not reduce total inter-node bytes",
                shape.name);
    ok &= check(shape_dedup > 0, "gateway dedup never engaged", shape.name);
    ok &= check(shape_bitmap > 0,
                "gate is vacuous: bitmap codec never engaged", shape.name);
    ok &= check(shape_delta > 0,
                "gate is vacuous: varint codec never engaged", shape.name);
  }
  ok &= check(gate_earned, "gate never measured (degenerate workload?)",
              "gate");
  bench::emit(gate_table, options);

  // --- Part 2: the classic scale-up vs scale-out table. ---
  util::Table table("Extension: scale-up vs scale-out, modeled ms "
                    "(rmat_n22_128)");
  table.set_columns({"primitive", "1 node x 4", "1 node x 8",
                     "2 nodes x 4", "4 nodes x 2", "scale-out penalty"},
                    2);
  const auto modeled_ms = [&](vgpu::Machine& machine,
                              const std::string& primitive) {
    auto cfg = bench::config_for_primitive(primitive,
                                           machine.num_devices(), seed);
    return run_on(machine, primitive, g, scale, cfg)
               .stats.modeled_total_s() *
           1e3;
  };
  for (const std::string primitive : {"bfs", "dobfs", "pr"}) {
    auto m4 = vgpu::Machine::create("k40", 4);
    auto m8 = vgpu::Machine::create("k40", 8);
    auto c2x4 = vgpu::Machine::create_cluster("k40", 4, 2);
    auto c4x2 = vgpu::Machine::create_cluster("k40", 2, 4);
    const double up4 = modeled_ms(m4, primitive);
    const double up8 = modeled_ms(m8, primitive);
    const double out2x4 = modeled_ms(c2x4, primitive);
    const double out4x2 = modeled_ms(c4x2, primitive);
    table.add_row({primitive, up4, up8, out2x4, out4x2, out2x4 / up8});
    std::printf("  %s done\n", primitive.c_str());
  }
  std::printf("expected: 8 GPUs in one node beat 2x4 and 4x2 clusters; "
              "the penalty is largest for communication-bound DOBFS\n");
  bench::emit(table, options);

  std::printf("acceptance (bit-identical results/items across "
              "{flat,two-level}x{bsp,pipeline}x{raw,auto}, byte-split "
              "invariants, inter-node byte reduction with dedup and "
              "both codecs engaged): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
