// Extension (§VIII future work): scale-up vs scale-out.
//
// The paper's concluding question: "can we achieve further scalability
// with multiple nodes, and given the increased latency and decreased
// bandwidth of those nodes, is it profitable to do so?" — and its
// §VII-C position that results "motivate a future focus on scaling up
// (fewer but more powerful nodes, each with more GPUs) in preference
// to scaling out."
//
// This bench runs BFS / DOBFS / PR on 8 GPUs arranged as 1x8, 2x4, and
// 4x2 (nodes x GPUs-per-node) with an InfiniBand-class inter-node
// link, plus the single-node 4-GPU reference. Expected shape: the
// flatter the primitive's communication profile, the worse scale-out
// hurts — DOBFS (broadcast O((n-1)|V|)) degrades hardest.
//
// Flags: --csv=PATH.
#include <cstdio>

#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"

namespace {

double run_on(mgg::vgpu::Machine machine, const std::string& primitive,
              const mgg::graph::Graph& g, double scale,
              std::uint64_t seed) {
  using namespace mgg;
  machine.set_workload_scale(scale);
  auto cfg =
      bench::config_for_primitive(primitive, machine.num_devices(), seed);
  vgpu::RunStats stats;
  if (primitive == "bfs") {
    stats = prim::run_bfs(g, bench::pick_source(g), machine, cfg).stats;
  } else if (primitive == "dobfs") {
    stats = prim::run_dobfs(g, bench::pick_source(g), machine, cfg).stats;
  } else {
    prim::PagerankOptions options;
    options.max_iterations = 20;
    stats = prim::run_pagerank(g, machine, cfg, options).stats;
  }
  return stats.modeled_total_s() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto ds = graph::build_dataset("rmat_n22_128", seed);
  const double scale = bench::dataset_scale(ds);

  util::Table table("Extension: scale-up vs scale-out, modeled ms "
                    "(rmat_n22_128)");
  table.set_columns({"primitive", "1 node x 4", "1 node x 8",
                     "2 nodes x 4", "4 nodes x 2", "scale-out penalty"},
                    2);

  for (const std::string primitive : {"bfs", "dobfs", "pr"}) {
    const double up4 = run_on(vgpu::Machine::create("k40", 4), primitive,
                              ds.graph, scale, seed);
    const double up8 = run_on(vgpu::Machine::create("k40", 8), primitive,
                              ds.graph, scale, seed);
    const double out2x4 =
        run_on(vgpu::Machine::create_cluster("k40", 4, 2), primitive,
               ds.graph, scale, seed);
    const double out4x2 =
        run_on(vgpu::Machine::create_cluster("k40", 2, 4), primitive,
               ds.graph, scale, seed);
    table.add_row({primitive, up4, up8, out2x4, out4x2, out2x4 / up8});
    std::printf("  %s done\n", primitive.c_str());
  }
  std::printf("expected: 8 GPUs in one node beat 2x4 and 4x2 clusters; "
              "the penalty is largest for communication-bound DOBFS\n");
  bench::emit(table, options);
  return 0;
}
