// Fig. 2: performance impact of the partitioner on 3 primitives x 3
// datasets, on 4 GPUs. Bars are speedup over the 1-GPU run of the same
// primitive/dataset, one bar per partitioner in {random, biasrandom,
// metis}.
//
// Paper finding: random does fairly well everywhere (best load
// balance); biased random is very close; metis wins only in a few
// spots with small margins and takes far longer to partition — which
// is why every other experiment uses random.
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include <cstdio>

#include "bench_support.hpp"
#include "partition/partitioner.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  // The paper's Fig. 2 datasets: kron, soc-orkut, uk-2002.
  const std::vector<std::string> datasets = {"kron_n24_32", "soc-orkut",
                                             "uk-2002"};
  const std::vector<std::string> primitives = {"bfs", "dobfs", "pr"};
  const std::vector<std::string> partitioners = {"random", "biasrandom",
                                                 "metis"};

  util::Table table("Fig. 2: speedup on " + std::to_string(gpus) +
                    " GPUs by partition strategy");
  table.set_columns({"workload", "random", "biasrandom", "metis",
                     "partition ms (rnd/bias/metis)"},
                    2);

  for (const auto& primitive : primitives) {
    for (const auto& name : datasets) {
      const auto ds = graph::build_dataset(name, seed);
      const double scale = bench::dataset_scale(ds);

      // 1-GPU reference (partitioner is irrelevant at 1 GPU).
      auto base_cfg = bench::config_for_primitive(primitive, 1, seed);
      const double base_ms =
          bench::run_primitive(primitive, ds.graph, "k40", base_cfg, scale)
              .modeled_ms;

      std::vector<util::Cell> row = {primitive + "+" + name};
      std::string part_times;
      for (const auto& part_name : partitioners) {
        auto cfg = bench::config_for_primitive(primitive, gpus, seed);
        cfg.partitioner = part_name;
        // Partitioner runtime (host side, real time).
        util::WallTimer timer;
        const auto partitioner = part::make_partitioner(part_name);
        (void)partitioner->assign(ds.graph, gpus, seed);
        const double part_ms = timer.milliseconds();
        if (!part_times.empty()) part_times += " / ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", part_ms);
        part_times += buf;

        const double ms =
            bench::run_primitive(primitive, ds.graph, "k40", cfg, scale)
                .modeled_ms;
        row.push_back(base_ms / ms);
      }
      row.push_back(part_times);
      table.add_row(std::move(row));
    }
  }
  bench::emit(table, options);
  return 0;
}
