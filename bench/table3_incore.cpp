// Table III: comparison with previous in-core GPU BFS systems.
//
// Each row reproduces one line of the paper's table: the reference
// system's published GTEPS (constant, from the paper) next to our
// framework's modeled GTEPS on the analog dataset with the same GPU
// count, and the resulting speedup ratio. Two in-repo baselines that
// represent the competing *approaches* are also run: the hardwired
// peer-access BFS (Merrill/Enterprise style) and the 2D-partitioned
// BFS (Fu/Bisson style).
//
// Flags: --csv=PATH.
#include <cmath>

#include "baselines/bfs_2d.hpp"
#include "baselines/hardwired_bfs.hpp"
#include "bench_support.hpp"

namespace {

struct Row {
  const char* graph;
  const char* ref_system;
  double ref_gteps;   // published number
  int our_gpus;       // GPUs the paper used on our side
  const char* algo;   // dobfs or bfs
  double paper_ours;  // the paper's own measured GTEPS (for reference)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  // Rows of the paper's Table III (reference hardware/perf as published).
  const std::vector<Row> rows = {
      {"kron_n24_32", "Enterprise (Liu) 2xK40", 15.0, 2, "dobfs", 77.7},
      {"kron_n24_32", "Enterprise (Liu) 4xK40", 18.0, 4, "dobfs", 67.7},
      {"rmat_2Mv_128Me", "B40C (Merrill) 4xK40", 11.2, 4, "dobfs", 29.9},
      {"coPapersCiteseer", "Medusa (Zhong) 4xC2050", 2.69, 4, "bfs", 3.31},
      {"com-orkut", "Bisson 4xK20X", 2.67, 4, "dobfs", 14.22},
      {"com-Friendster", "Bisson 64xK20X", 15.68, 4, "dobfs", 14.1},
      {"kron_n23_16", "Bernaschi 4xK20X", 1.3, 4, "dobfs", 30.8},
      {"kron_n25_16", "Bernaschi 16xK20X", 3.2, 6, "dobfs", 31.0},
      {"kron_n25_32", "Fu 64xK20", 22.7, 4, "dobfs", 32.0},
      {"kron_n23_32", "Fu 4xK20", 6.3, 4, "dobfs", 27.9},
  };

  util::Table table("Table III: vs previous in-core GPU BFS systems");
  table.set_columns({"graph", "reference system", "ref GTEPS",
                     "our GTEPS (modeled)", "speedup", "paper speedup",
                     "hardwired GTEPS", "2D GTEPS"},
                    2);

  for (const auto& row : rows) {
    const auto ds = graph::build_dataset(row.graph, seed);
    const double scale = bench::dataset_scale(ds);
    auto cfg = bench::config_for_primitive(row.algo, row.our_gpus, seed);
    const auto ours =
        bench::run_primitive(row.algo, ds.graph, "k40", cfg, scale);

    // Approach baselines on the same machine shape.
    auto machine = vgpu::Machine::create("k40", row.our_gpus);
    machine.set_workload_scale(scale);
    const double full_edges =
        static_cast<double>(ds.graph.num_edges) * scale;
    const auto hw = baselines::hardwired_bfs(
        ds.graph, bench::pick_source(ds.graph), machine, row.our_gpus);
    const int grid_rows = row.our_gpus >= 4 ? 2 : 1;
    const int grid_cols = row.our_gpus / grid_rows;
    auto machine2 = vgpu::Machine::create("k40", row.our_gpus);
    machine2.set_workload_scale(scale);
    const auto b2d =
        baselines::bfs_2d(ds.graph, bench::pick_source(ds.graph), machine2,
                          grid_rows, grid_cols);

    table.add_row({row.graph, row.ref_system, row.ref_gteps, ours.gteps,
                   ours.gteps / row.ref_gteps,
                   row.paper_ours / row.ref_gteps,
                   hw.stats.gteps(full_edges), b2d.stats.gteps(full_edges)});
  }
  std::printf("speedup = our modeled GTEPS / published reference GTEPS; "
              "'paper speedup' uses the paper's own measured GTEPS.\n");
  bench::emit(table, options);
  return 0;
}
