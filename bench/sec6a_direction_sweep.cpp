// §VI-A: DOBFS direction-switch threshold sweep.
//
// The paper reports do_a = 0.01 and do_b = 0.1 as good choices for
// social graphs, and — importantly for the framework — that the same
// parameters work across GPU counts ("mostly mGPU-independent"). This
// bench sweeps (do_a, do_b) on a social analog at 1 and 4 GPUs and
// prints modeled runtimes; the minimum should sit in the same region
// for both GPU counts.
//
// Flags: --csv=PATH.
#include "bench_support.hpp"
#include "primitives/dobfs.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto ds = graph::build_dataset("soc-orkut", seed);
  const double scale = bench::dataset_scale(ds);
  const std::vector<double> do_a_values = {0.0, 0.001, 0.01, 0.1, 1.0,
                                           1e18};
  const std::vector<double> do_b_values = {0.01, 0.1, 1.0};

  util::Table table("Sec. VI-A: DOBFS runtime (ms) vs (do_a, do_b), "
                    "soc-orkut analog");
  table.set_columns({"do_a", "do_b", "ms @1GPU", "switches@1",
                     "ms @4GPU", "switches@4"},
                    3);

  for (const double do_a : do_a_values) {
    for (const double do_b : do_b_values) {
      prim::DobfsOptions opt;
      opt.do_a = do_a;
      opt.do_b = do_b;
      std::vector<double> ms(2);
      std::vector<int> switches(2);
      int idx = 0;
      for (const int gpus : {1, 4}) {
        auto cfg = bench::config_for_primitive("dobfs", gpus, seed);
        auto machine = vgpu::Machine::create("k40", gpus);
        machine.set_workload_scale(scale);
        const auto result = prim::run_dobfs(
            ds.graph, bench::pick_source(ds.graph), machine, cfg, opt);
        ms[idx] = result.stats.modeled_total_s() * 1e3;
        switches[idx] = result.direction_switches;
        ++idx;
      }
      table.add_row({do_a, do_b, ms[0],
                     static_cast<long long>(switches[0]), ms[1],
                     static_cast<long long>(switches[1])});
    }
  }
  std::printf("expected: best region around do_a=0.01, do_b=0.1 at both "
              "GPU counts (thresholds are mGPU-independent); do_a=1e18 "
              "is the never-switch (plain BFS) reference\n");
  bench::emit(table, options);
  return 0;
}
