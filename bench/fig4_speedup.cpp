// Fig. 4: multi-GPU speedup over 1-GPU performance for BC, BFS, CC,
// DOBFS, PR, and SSSP — geometric mean of per-dataset runtime speedups
// on the 6x K40 machine.
//
// Paper reference values at 6 GPUs: BFS 2.63x, SSSP 2.57x, CC 2.00x,
// BC 1.96x, PR 3.86x; DOBFS stays mostly flat (communication bound).
//
// Flags: --suite=fast|default|full, --max-gpus=N (default 6), --csv=PATH.
#include <cstdio>
#include <map>

#include "bench_support.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"max-gpus"});
  const auto suite = options.get_string("suite", "default");
  const int max_gpus = static_cast<int>(options.get_int("max-gpus", 6));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const std::vector<std::string> primitives = {"bc", "bfs",  "cc",
                                               "dobfs", "pr", "sssp"};

  const auto datasets = bench::suite_datasets(suite);
  std::printf("Fig. 4 reproduction: geomean mGPU speedup over 1 GPU "
              "(K40), %zu datasets [%s suite]\n",
              datasets.size(), suite.c_str());

  // modeled_ms[primitive][dataset][gpus]
  std::map<std::string, std::map<std::string, std::map<int, double>>> ms;
  for (const auto& name : datasets) {
    const auto ds = graph::build_dataset(name, seed);
    const double scale = bench::dataset_scale(ds);
    for (const auto& primitive : primitives) {
      for (int gpus = 1; gpus <= max_gpus; ++gpus) {
        auto cfg = bench::config_for_primitive(primitive, gpus, seed);
        const auto outcome =
            bench::run_primitive(primitive, ds.graph, "k40", cfg, scale);
        ms[primitive][name][gpus] = outcome.modeled_ms;
      }
    }
    std::printf("  measured %s (|V|=%u |E|=%u)\n", name.c_str(),
                ds.graph.num_vertices, ds.graph.num_edges);
  }

  util::Table table("Fig. 4: geomean speedup vs 1 GPU");
  std::vector<std::string> cols = {"primitive"};
  for (int gpus = 2; gpus <= max_gpus; ++gpus) {
    cols.push_back(std::to_string(gpus) + " GPUs");
  }
  cols.push_back("paper@6");
  table.set_columns(cols, 2);

  const std::map<std::string, double> paper_at_6 = {
      {"bfs", 2.63}, {"sssp", 2.57}, {"cc", 2.00},
      {"bc", 1.96},  {"pr", 3.86},   {"dobfs", 1.0}};

  for (const auto& primitive : primitives) {
    std::vector<util::Cell> row = {primitive};
    for (int gpus = 2; gpus <= max_gpus; ++gpus) {
      std::vector<double> speedups;
      for (const auto& name : datasets) {
        speedups.push_back(ms[primitive][name][1] /
                           ms[primitive][name][gpus]);
      }
      row.push_back(util::geometric_mean(speedups));
    }
    row.push_back(paper_at_6.at(primitive));
    table.add_row(std::move(row));
  }
  bench::emit(table, options);
  return 0;
}
