// google-benchmark micro suite: core operator and partitioner
// throughput on the host (real wall time, not the cost model).
#include <benchmark/benchmark.h>

#include "core/enactor.hpp"
#include "core/frontier.hpp"
#include "core/operators.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "primitives/common.hpp"
#include "vgpu/machine.hpp"

namespace {

using namespace mgg;

graph::Graph bench_graph() {
  static const graph::Graph g = graph::build_undirected(
      graph::make_rmat(13, 16, graph::RmatParams::gtgraph(), 11));
  return g;
}

struct OpFixture {
  explicit OpFixture(const graph::Graph& graph)
      : machine(vgpu::Machine::create("k40", 1)), g(graph) {
    frontier.init(machine.device(0), vgpu::AllocationScheme::kPreallocFusion,
                  g.num_vertices, g.num_edges);
    dedup.resize(g.num_vertices);
    temp.set_allocator(&machine.device(0).memory());
    temp_edges.set_allocator(&machine.device(0).memory());
    ctx = core::OpContext{&machine.device(0), &g,    &frontier,
                          &temp,              &temp_edges, &dedup,
                          vgpu::AllocationScheme::kPreallocFusion};
    // Seed with every vertex for full-graph advances.
    all_vertices.resize(g.num_vertices);
    for (VertexT v = 0; v < g.num_vertices; ++v) all_vertices[v] = v;
  }

  vgpu::Machine machine;
  graph::Graph g;
  core::Frontier frontier;
  util::AtomicBitset dedup;
  util::Array1D<VertexT> temp{"advance_temp"};
  util::Array1D<SizeT> temp_edges{"advance_temp_edges"};
  core::OpContext ctx;
  std::vector<VertexT> all_vertices;
};

void BM_AdvanceFilterFused(benchmark::State& state) {
  auto g = bench_graph();
  OpFixture fx(g);
  std::vector<VertexT> visited(g.num_vertices);
  for (auto _ : state) {
    std::fill(visited.begin(), visited.end(), 0);
    fx.frontier.set_input(fx.all_vertices);
    const SizeT produced =
        core::advance_filter(fx.ctx, [&](VertexT, VertexT dst, SizeT) {
          if (visited[dst]) return false;
          visited[dst] = 1;
          return true;
        });
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.num_edges);
}
BENCHMARK(BM_AdvanceFilterFused);

void BM_AdvanceFilterSplit(benchmark::State& state) {
  auto g = bench_graph();
  OpFixture fx(g);
  fx.ctx.scheme = vgpu::AllocationScheme::kMax;
  std::vector<VertexT> visited(g.num_vertices);
  for (auto _ : state) {
    std::fill(visited.begin(), visited.end(), 0);
    fx.frontier.set_input(fx.all_vertices);
    const SizeT produced =
        core::advance_filter(fx.ctx, [&](VertexT, VertexT dst, SizeT) {
          if (visited[dst]) return false;
          visited[dst] = 1;
          return true;
        });
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.num_edges);
}
BENCHMARK(BM_AdvanceFilterSplit);

void BM_Filter(benchmark::State& state) {
  auto g = bench_graph();
  OpFixture fx(g);
  for (auto _ : state) {
    fx.frontier.set_input(fx.all_vertices);
    const SizeT produced =
        core::filter(fx.ctx, [](VertexT v) { return (v & 1) == 0; });
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.num_vertices);
}
BENCHMARK(BM_Filter);

void BM_AdvancePull(benchmark::State& state) {
  auto g = bench_graph();
  OpFixture fx(g);
  for (auto _ : state) {
    const SizeT produced = core::advance_pull(
        fx.ctx, fx.all_vertices,
        [](VertexT, VertexT parent, SizeT) { return (parent & 7) == 0; });
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.num_vertices);
}
BENCHMARK(BM_AdvancePull);

void BM_Partitioner(benchmark::State& state, const std::string& name) {
  auto g = bench_graph();
  const auto partitioner = part::make_partitioner(name);
  for (auto _ : state) {
    auto assignment = partitioner->assign(g, 4, 1);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.num_vertices);
}
BENCHMARK_CAPTURE(BM_Partitioner, random, std::string("random"));
BENCHMARK_CAPTURE(BM_Partitioner, biasrandom, std::string("biasrandom"));
BENCHMARK_CAPTURE(BM_Partitioner, metis, std::string("metis"));
BENCHMARK_CAPTURE(BM_Partitioner, chunk, std::string("chunk"));

void BM_PartitionBuild(benchmark::State& state) {
  auto g = bench_graph();
  const auto assignment = part::RandomPartitioner().assign(g, 4, 1);
  const auto dup = state.range(0) == 0 ? part::Duplication::kOneHop
                                       : part::Duplication::kAll;
  for (auto _ : state) {
    auto pg = part::PartitionedGraph::build(g, assignment, 4, dup);
    benchmark::DoNotOptimize(pg);
  }
}
BENCHMARK(BM_PartitionBuild)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
