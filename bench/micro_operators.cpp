// Microbenchmark: operator-core throughput across the three advance
// pipelines — fused single-pass (sparse queue), split two-kernel, and
// dense bitmap — on a full-graph "relaxation-shaped" advance whose
// functor admits every edge. That workload is the one the sparse/dense
// distinction exists for: with every edge emitting, the sparse
// pipelines pay one dedup atomic (test_and_set) per edge plus an
// output-compaction write per unique vertex, while the dense pipeline
// marks emissions with a plain word-or and never compacts.
//
// Also instruments the global allocator to enforce the single-pass
// core's headline property: once warm, the fused pipeline's
// advance+swap steady state performs zero heap allocations.
//
// Measurement protocol (same discipline as micro_comm):
//  * steady-state loop = advance + frontier swap; the frontier reaches
//    its fixpoint (every vertex with an in-edge) during warm-up, so
//    every measured iteration does identical work;
//  * throughput is computed from the fastest iteration across --reps
//    runs (min-of-iterations removes scheduler noise);
//  * allocations are sampled around the measured loop only, after
//    warm-up has grown every buffer;
//  * acceptance gates are earned, not vacuous: the run fails unless
//    the workload is big enough to mean something (frontier and
//    edges/iteration floors) and the output sets agree across all
//    three pipelines.
//
// Exit gates: dense >= 1.5x fused throughput, zero fused steady-state
// allocations, pipelines agree, workload non-degenerate. Results are
// also written as machine-readable JSON (--json=PATH, default
// BENCH_operators.json) for CI trend tracking.
//
// Flags: --scale=N rmat scale (default 13), --ef=N edge factor
// (default 16), --iters=N (default 50), --reps=N (default 5),
// --json=PATH, --csv=PATH.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/enactor.hpp"
#include "core/frontier.hpp"
#include "core/operators.hpp"
#include "graph/generators.hpp"
#include "primitives/bfs.hpp"
#include "primitives/common.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

// ---------------------------------------------------------------------
// Allocation instrumentation (whole process; scoped by sampling the
// counter around the measured loops).
// ---------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace mgg;

constexpr int kWarmupRounds = 3;

struct PipelineSpec {
  const char* name;
  vgpu::AllocationScheme scheme;
  double dense_threshold;
};

constexpr PipelineSpec kPipelines[] = {
    {"fused", vgpu::AllocationScheme::kPreallocFusion, 0.0},
    {"split", vgpu::AllocationScheme::kMax, 0.0},
    {"dense", vgpu::AllocationScheme::kPreallocFusion, 1e-9},
};

struct PipelineResult {
  double best_iter_s = 1e300;
  double edges_per_iter = 0;
  double edges_per_sec = 0;
  std::uint64_t steady_allocs = 0;
  SizeT steady_frontier = 0;
  std::uint64_t frontier_checksum = 0;  ///< Σ output vertices (set hash)
  std::uint64_t dense_switches = 0;
};

/// Run one pipeline's advance+swap steady state on graph `g`.
PipelineResult run_pipeline(const graph::Graph& g, const PipelineSpec& spec,
                            int iters) {
  auto machine = vgpu::Machine::create("k40", 1);
  vgpu::Device& device = machine.device(0);

  core::Frontier frontier;
  frontier.init(device, spec.scheme, g.num_vertices, g.num_edges);
  util::AtomicBitset dedup;
  dedup.resize(g.num_vertices);
  util::Array1D<VertexT> temp{"advance_temp"};
  util::Array1D<SizeT> temp_edges{"advance_temp_edges"};
  temp.set_allocator(&device.memory());
  temp_edges.set_allocator(&device.memory());
  if (spec.scheme == vgpu::AllocationScheme::kMax) {
    temp.allocate(g.num_edges);
    temp_edges.allocate(g.num_edges);
  }
  core::OpContext ctx{&device, &g,          &frontier,
                      &temp,   &temp_edges, &dedup,
                      spec.scheme};
  ctx.dense_threshold = spec.dense_threshold;

  // Relaxation-shaped payload: every edge writes and emits.
  std::vector<VertexT> labels(g.num_vertices, 0);
  auto relax = [&](VertexT src, VertexT dst, SizeT) {
    labels[dst] = src;
    return true;
  };

  // Seed with every vertex; after one advance the frontier settles at
  // its fixpoint (all vertices with in-edges), so the measured
  // iterations run an identical workload.
  std::vector<VertexT> all(g.num_vertices);
  for (VertexT v = 0; v < g.num_vertices; ++v) all[v] = v;
  frontier.set_input(all);

  PipelineResult r;
  for (int it = 0; it < kWarmupRounds; ++it) {
    core::advance_filter(ctx, relax);
    frontier.swap();
  }
  device.harvest_iteration();  // warm-up work is not measured

  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  util::WallTimer timer;
  for (int it = 0; it < iters; ++it) {
    timer.restart();
    core::advance_filter(ctx, relax);
    frontier.swap();
    r.best_iter_s = std::min(r.best_iter_s, timer.seconds());
  }
  r.steady_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  r.edges_per_iter =
      static_cast<double>(device.harvest_iteration().edges) / iters;
  r.edges_per_sec = r.edges_per_iter / r.best_iter_s;
  r.steady_frontier = frontier.input_size();
  frontier.for_each_input(
      [&](VertexT v) { r.frontier_checksum += v; });
  r.dense_switches = frontier.dense_switches();
  return r;
}

/// One-GPU BFS with a realistic dense threshold: counts representation
/// flips on a real traversal and cross-checks labels against the
/// all-sparse run.
struct BfsDenseResult {
  std::uint64_t dense_switches = 0;
  std::uint64_t dense_gpu_iterations = 0;
  bool labels_match = false;
};

BfsDenseResult run_bfs_dense_check(const graph::Graph& g) {
  auto run = [&](double threshold, std::uint64_t* switches,
                 std::uint64_t* dense_iters) {
    auto machine = vgpu::Machine::create("k40", 1);
    core::Config cfg;
    cfg.num_gpus = 1;
    cfg.dense_threshold = threshold;
    prim::BfsProblem problem;
    problem.init(g, machine, cfg);
    prim::BfsEnactor enactor(problem);
    enactor.reset(bench::pick_source(g));
    const vgpu::RunStats stats = enactor.enact();
    if (switches != nullptr) *switches = stats.dense_switches;
    if (dense_iters != nullptr) {
      *dense_iters = 0;
      for (const auto& rec : enactor.iteration_records()) {
        *dense_iters += rec.dense_gpus;
      }
    }
    return prim::gather_vertex_values<VertexT>(
        problem.partitioned(),
        [&](int gpu, VertexT lv) { return problem.data(gpu).labels[lv]; });
  };
  BfsDenseResult r;
  const auto sparse_labels = run(0.0, nullptr, nullptr);
  const auto dense_labels =
      run(0.05, &r.dense_switches, &r.dense_gpu_iterations);
  r.labels_match = dense_labels == sparse_labels;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"ef", "iters", "json", "reps", "scale"});
  const int scale = static_cast<int>(options.get_int("scale", 13));
  const double ef = options.get_double("ef", 16);
  const int iters = static_cast<int>(options.get_int("iters", 50));
  const int reps = static_cast<int>(options.get_int("reps", 5));
  const std::string json_path =
      options.get_string("json", "BENCH_operators.json");

  const graph::Graph g = graph::build_undirected(graph::make_rmat(
      scale, ef, graph::RmatParams::gtgraph(), options.get_int("seed", 1)));

  util::Table table("micro: advance pipelines, full-graph relaxation "
                    "(rmat scale " + std::to_string(scale) + ", |V| " +
                    std::to_string(g.num_vertices) + ", |E| " +
                    std::to_string(g.num_edges) + ")");
  table.set_columns({"pipeline", "edges/iter", "frontier", "Medges/s",
                     "vs fused", "allocs/iter", "switches"},
                    1);

  PipelineResult best[3];
  for (int p = 0; p < 3; ++p) {
    for (int rep = 0; rep < reps; ++rep) {
      const PipelineResult r = run_pipeline(g, kPipelines[p], iters);
      if (rep == 0 || r.best_iter_s < best[p].best_iter_s) {
        const std::uint64_t worst_allocs =
            rep == 0 ? r.steady_allocs
                     : std::max(best[p].steady_allocs, r.steady_allocs);
        best[p] = r;
        best[p].steady_allocs = worst_allocs;
      } else {
        best[p].steady_allocs =
            std::max(best[p].steady_allocs, r.steady_allocs);
      }
    }
  }
  const double fused_eps = best[0].edges_per_sec;
  for (int p = 0; p < 3; ++p) {
    const PipelineResult& r = best[p];
    table.add_row({std::string(kPipelines[p].name),
                   static_cast<long long>(r.edges_per_iter),
                   static_cast<long long>(r.steady_frontier),
                   r.edges_per_sec / 1e6, r.edges_per_sec / fused_eps,
                   static_cast<double>(r.steady_allocs) / iters,
                   static_cast<long long>(r.dense_switches)});
  }
  bench::emit(table, options);

  const BfsDenseResult bfs = run_bfs_dense_check(g);
  std::printf("bfs @ dense_threshold=0.05: %llu representation switches, "
              "%llu dense GPU-iterations, labels %s\n",
              static_cast<unsigned long long>(bfs.dense_switches),
              static_cast<unsigned long long>(bfs.dense_gpu_iterations),
              bfs.labels_match ? "match" : "MISMATCH");

  // -------------------------------------------------------------------
  // Acceptance gates. Floors keep the gates earned: a degenerate graph
  // (empty frontier, no edges) must fail, not pass vacuously.
  // -------------------------------------------------------------------
  const double dense_speedup = best[2].edges_per_sec / fused_eps;
  const bool non_vacuous =
      best[0].steady_frontier >= g.num_vertices / 4 &&
      best[0].edges_per_iter >= static_cast<double>(g.num_vertices) &&
      bfs.dense_switches >= 1;
  const bool agree =
      best[0].frontier_checksum == best[1].frontier_checksum &&
      best[0].frontier_checksum == best[2].frontier_checksum &&
      best[0].steady_frontier == best[2].steady_frontier;
  const bool fused_zero_alloc = best[0].steady_allocs == 0;
  const bool dense_fast = dense_speedup >= 1.5;
  const bool ok = non_vacuous && agree && fused_zero_alloc && dense_fast &&
                  bfs.labels_match;

  util::JsonWriter w;
  w.begin_object();
  w.key("graph").begin_object();
  w.key("scale").value(static_cast<long long>(scale));
  w.key("edge_factor").value(ef);
  w.key("vertices").value(static_cast<unsigned long long>(g.num_vertices));
  w.key("edges").value(static_cast<unsigned long long>(g.num_edges));
  w.end_object();
  w.key("pipelines").begin_array();
  for (int p = 0; p < 3; ++p) {
    const PipelineResult& r = best[p];
    w.begin_object();
    w.key("name").value(kPipelines[p].name);
    w.key("edges_per_sec").value(r.edges_per_sec);
    w.key("edges_per_iter").value(r.edges_per_iter);
    w.key("steady_frontier").value(
        static_cast<unsigned long long>(r.steady_frontier));
    w.key("allocs_per_iter").value(static_cast<double>(r.steady_allocs) /
                                   iters);
    w.key("dense_switches").value(
        static_cast<unsigned long long>(r.dense_switches));
    w.end_object();
  }
  w.end_array();
  w.key("dense_speedup_vs_fused").value(dense_speedup);
  w.key("bfs_dense").begin_object();
  w.key("threshold").value(0.05);
  w.key("dense_switches").value(
      static_cast<unsigned long long>(bfs.dense_switches));
  w.key("dense_gpu_iterations").value(
      static_cast<unsigned long long>(bfs.dense_gpu_iterations));
  w.key("labels_match").value(bfs.labels_match);
  w.end_object();
  w.key("acceptance").begin_object();
  w.key("dense_speedup_ok").value(dense_fast);
  w.key("fused_zero_alloc").value(fused_zero_alloc);
  w.key("pipelines_agree").value(agree);
  w.key("non_vacuous").value(non_vacuous);
  w.key("pass").value(ok);
  w.end_object();
  w.end_object();
  w.save(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  std::printf("acceptance (dense >= 1.5x fused, fused steady-state allocs "
              "== 0, pipelines agree, non-degenerate workload): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
