// Table I: per-primitive cost summary — measured W (computation), C
// (communication computation), H (communication volume), and S
// (iterations) against the paper's analytic predictions, on a
// reference rmat graph across 4 GPUs.
//
//   primitive  W              C                 H                   S
//   BFS        O(|Ei|)        O(|Vi|)           O(|Bi|)             ~D/2
//   DOBFS      O(a|Ei|), a<1  O(|V|)            O((n-1)|V|)         ~D/2
//   SSSP       O(b|Ei|)       O(b|Vi|)          O(2b|Bi|)           ~bD/2
//   BC         O(2|Ei|)       O(2|Vi|+|V|)      O(5|Bi|+2(n-1)|Li|) ~D/2
//   CC         log(D/2)O(|Ei|) SxO(|Vi|)        SxO(2|Vi|)          2-5
//   PR         SxO(|Ei|)      SxO(|Bi|)         SxO(|Bi|)           data-dep
//
// The "measured/bound" columns report the measured counter divided by
// the formula's leading term, so O(.) predictions should come out as
// a modest constant (and DOBFS's a as < 1).
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include "bench_support.hpp"
#include "core/enactor.hpp"
#include "graph/properties.hpp"
#include "partition/partitioned_graph.hpp"
#include "partition/partitioner.hpp"
#include "primitives/bc.hpp"
#include "primitives/bfs.hpp"
#include "primitives/cc.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/sssp.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const auto ds = graph::build_dataset("rmat_n22_128", seed);
  const graph::Graph& g = ds.graph;
  const double diameter = graph::estimate_diameter(g, 8, seed);

  // Partition once (random, as everywhere) to measure |B_i| and |L_i|.
  const auto assignment =
      part::RandomPartitioner().assign(g, gpus, seed);
  const auto pg = part::PartitionedGraph::build(
      g, assignment, gpus, part::Duplication::kAll);
  double sum_border = 0;
  for (int i = 0; i < gpus; ++i) {
    sum_border += static_cast<double>(pg.border_total(i));
  }
  const double v_total = g.num_vertices;
  const double e_total = g.num_edges;

  util::Table table(
      "Table I: measured cost counters vs analytic bounds (rmat_n22_128, " +
      std::to_string(gpus) + " GPUs, D~" + std::to_string(diameter) + ")");
  table.set_columns({"primitive", "W (edges)", "W/bound", "C (items)",
                     "C/bound", "H (items)", "H/bound", "S", "S/(D/2)"},
                    2);

  const std::vector<std::string> primitives = {"bfs", "dobfs", "sssp",
                                               "bc",  "cc",    "pr"};
  for (const auto& primitive : primitives) {
    auto cfg = bench::config_for_primitive(primitive, gpus, seed);
    const auto outcome = bench::run_primitive(primitive, g, "k40", cfg);
    const auto& st = outcome.stats;
    const double s = static_cast<double>(st.iterations);

    // Leading terms of the Table I formulas (summed over GPUs).
    double w_bound = e_total;          // sum of |E_i| = |E|
    double c_bound = v_total * gpus;   // n x O(|V_i|)-ish default
    double h_bound = sum_border;       // sum |B_i|
    if (primitive == "dobfs") {
      h_bound = (gpus - 1) * v_total;
      c_bound = (gpus - 1) * v_total;
    } else if (primitive == "sssp") {
      h_bound = 2 * sum_border;
    } else if (primitive == "bc") {
      w_bound = 2 * e_total;
      h_bound = 5 * sum_border + 2.0 * (gpus - 1) * v_total;
      c_bound = 2 * v_total * gpus + v_total;
    } else if (primitive == "cc") {
      w_bound = std::log2(std::max(2.0, diameter / 2)) * e_total;
      h_bound = s * 2 * v_total;
      c_bound = s * v_total * gpus;
    } else if (primitive == "pr") {
      w_bound = s * e_total;
      h_bound = s * sum_border;
      c_bound = s * sum_border;
    }

    table.add_row({primitive, static_cast<long long>(st.total_edges),
                   static_cast<double>(st.total_edges) / w_bound,
                   static_cast<long long>(st.total_combine_items),
                   static_cast<double>(st.total_combine_items) / c_bound,
                   static_cast<long long>(st.total_comm_items),
                   st.total_comm_items == 0
                       ? 0.0
                       : static_cast<double>(st.total_comm_items) / h_bound,
                   static_cast<long long>(st.iterations),
                   s / (diameter / 2)});
  }
  bench::emit(table, options);
  return 0;
}
