// Serve-layer benchmark + exit gate: batched multi-source traversal
// vs individual runs, and QueryService throughput/latency across vGPU
// counts (docs/architecture.md §13).
//
// Protocol, per gate dataset (one rmat + one social analog, the
// families the paper's §V evaluates):
//   * pick 64 distinct sources deterministically (--query-seed);
//   * run ONE 64-source MsBfs batch at 4 vGPUs and the 64 individual
//     BFS runs it replaces, identical config;
//   * gate >= 3x modeled W+H reduction (sum of individual
//     modeled_compute_s + modeled_comm_s over one batch's), and check
//     every slot's depths bit-identical to its individual run — the
//     batch may be cheaper only by sharing work, never by changing
//     answers;
//   * non-vacuous: the gate is earned only when the individual
//     baseline models nonzero W+H AND the batch actually shipped
//     inter-GPU bytes (a 1-vGPU or empty-frontier degenerate run
//     passes nothing).
// All gate quantities are modeled (seed-deterministic); no wall-clock
// thresholds.
//
// Then the serving sweep: QueryService on the social analog at
// {1, 2, 4, 8} vGPUs per lane, a mixed reachability / BFS-depth /
// SSSP-distance workload (--queries, --query-seed, --batch-width),
// reporting batches, QPS, and p50/p99 latency (wall-clock,
// informational — QPS varies with host load; answers do not). The
// 4-vGPU row runs under a Tracer: every span must carry a batch tag
// and the distinct tags must equal the batch count, and the
// per-category modeled-time attribution is printed.
//
// Finally an open-loop row (informational): the same workload arriving
// on a Poisson clock at --offered-qps (default 2000), admitted at
// arrival with a bounded pending set, reporting offered vs achieved
// QPS and the shed count (docs/architecture.md §15).
//
// Flags: common set (--queries/--query-seed/--batch-width documented
// in bench_support.hpp) plus --lanes=N concurrent lanes for the sweep
// (default 2) and --offered-qps=N for the open-loop row. --trace=PATH
// writes the 4-vGPU sweep row's batch-tagged Chrome trace (this binary
// drives the serve layer directly, so the common harness's first-run
// capture does not apply).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/multi_source.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "vgpu/machine.hpp"
#include "vgpu/trace.hpp"

namespace {

using namespace mgg;

constexpr int kGateGpus = 4;
constexpr double kMinRatio = 3.0;
const char* const kGateDatasets[] = {"rmat_n20_512", "soc-orkut"};
const char* const kSweepDataset = "soc-orkut";

std::vector<VertexT> distinct_sources(const graph::Graph& g, std::size_t n,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::unordered_set<VertexT> seen;
  std::vector<VertexT> srcs;
  while (srcs.size() < n) {
    const auto v = static_cast<VertexT>(rng.next_below(g.num_vertices));
    if (seen.insert(v).second) srcs.push_back(v);
  }
  return srcs;
}

bool check(bool ok, const char* what, const std::string& label) {
  if (!ok) std::fprintf(stderr, "FAIL [%s]: %s\n", label.c_str(), what);
  return ok;
}

core::Config config_for(int gpus, std::uint64_t seed) {
  core::Config cfg;
  cfg.num_gpus = gpus;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"lanes", "offered-qps"});
  const auto workload = bench::parse_query_workload(options);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const int lanes = static_cast<int>(options.get_int("lanes", 2));

  bool ok = true;

  // ----------------------------------------------------------------
  // Gate: one 64-source batch vs the 64 runs it replaces, at 4 vGPUs.
  // ----------------------------------------------------------------
  util::Table gate_table("serve: batched multi-source BFS vs individual (" +
                         std::to_string(kGateGpus) + " vGPUs, modeled)");
  gate_table.set_columns({"dataset", "indiv W+H ms", "batch W+H ms",
                          "ratio", "batch comm B", "identical"},
                         1);
  bool gate_earned = false;
  for (const char* name : kGateDatasets) {
    const auto ds = graph::build_dataset(name, seed);
    const auto& g = ds.graph;
    const auto srcs =
        distinct_sources(g, prim::kMaxBatchWidth, workload.seed);
    const auto cfg = config_for(kGateGpus, seed);
    auto machine = vgpu::Machine::create("k40", kGateGpus);

    const auto batched = prim::run_msbfs(g, srcs, machine, cfg);
    double individual_s = 0;
    bool identical = true;
    for (int slot = 0; slot < batched.width; ++slot) {
      const auto r = prim::run_bfs(g, srcs[slot], machine, cfg);
      individual_s += r.stats.modeled_compute_s + r.stats.modeled_comm_s;
      const auto got = batched.slot(slot, g.num_vertices);
      identical &= std::equal(r.labels.begin(), r.labels.end(), got.begin());
    }
    const double batch_s =
        batched.stats.modeled_compute_s + batched.stats.modeled_comm_s;
    const double ratio = batch_s > 0 ? individual_s / batch_s : 0.0;
    gate_table.add_row({std::string(name), individual_s * 1e3,
                        batch_s * 1e3, ratio,
                        static_cast<long long>(
                            batched.stats.total_comm_bytes),
                        std::string(identical ? "yes" : "NO")});
    ok &= check(identical,
                "batched depths differ from individual runs", name);
    // Non-vacuity: a run that models no work or ships no bytes at 4
    // vGPUs cannot earn the gate.
    if (individual_s > 0 && batch_s > 0 &&
        batched.stats.total_comm_bytes > 0 &&
        batched.stats.iterations > 0) {
      gate_earned = true;
      ok &= check(ratio >= kMinRatio,
                  "batched W+H reduction below the 3x gate", name);
    }
  }
  ok &= check(gate_earned, "gate never measured (degenerate workload?)",
              "gate");
  gate_table.print();

  // ----------------------------------------------------------------
  // Serving sweep: QPS + p50/p99 across vGPU counts.
  // ----------------------------------------------------------------
  const auto ds = graph::build_dataset(kSweepDataset, seed);
  const auto queries = serve::generate_queries(
      ds.graph, workload.queries, workload.seed, ds.graph.has_values());
  util::Table sweep_table(
      std::string("serve: query throughput on ") + kSweepDataset + " (" +
      std::to_string(lanes) + " lanes, " +
      std::to_string(workload.queries) + " queries, batch width " +
      std::to_string(workload.batch_width) + ")");
  sweep_table.set_columns({"vGPUs", "batches", "QPS", "p50 ms", "p99 ms",
                           "W ms", "H ms"},
                          1);
  vgpu::Tracer tracer;
  for (const int gpus : {1, 2, 4, 8}) {
    serve::ServeOptions opts;
    opts.config = config_for(gpus, seed);
    opts.batch_width = workload.batch_width;
    opts.num_lanes = lanes;
    opts.tracer = gpus == kGateGpus ? &tracer : nullptr;
    serve::QueryService service(ds.graph, opts);
    const auto results = service.run(queries);
    ok &= check(results.size() == queries.size(),
                "result count != query count",
                std::to_string(gpus) + " vGPUs");
    const auto& s = service.stats();
    sweep_table.add_row({static_cast<long long>(gpus),
                         static_cast<long long>(s.batches), s.qps,
                         s.p50_ms, s.p99_ms, s.modeled_compute_s * 1e3,
                         s.modeled_comm_s * 1e3});
    if (gpus == kGateGpus) {
      // Tracer attribution: every serve-mode span is batch-tagged and
      // the tags cover exactly the batches run on the traced lane.
      const auto spans = tracer.sorted_spans();
      ok &= check(!spans.empty(), "traced lane recorded no spans",
                  "trace");
      std::unordered_set<std::uint64_t> tags;
      std::map<std::string, double> by_category;
      bool all_tagged = true;
      for (const auto& span : spans) {
        all_tagged &= span.batch > 0;
        tags.insert(span.batch);
        by_category[to_string(span.category)] +=
            (span.end_s - span.start_s) * 1e3;
      }
      ok &= check(all_tagged, "untagged span in a serve-mode trace",
                  "trace");
      ok &= check(tags.size() <= s.batches,
                  "more batch tags than batches", "trace");
      std::printf("trace (4 vGPUs, lane 0): %zu spans, %zu batch tags, "
                  "%llu dropped\n",
                  spans.size(), tags.size(),
                  static_cast<unsigned long long>(tracer.dropped_spans()));
      for (const auto& [category, ms] : by_category) {
        std::printf("  %-9s %10.3f ms modeled\n", category.c_str(), ms);
      }
    }
  }
  bench::emit(sweep_table, options);

  // ----------------------------------------------------------------
  // Open-loop arrivals: offered vs achieved QPS (informational).
  // Queries arrive on a Poisson clock instead of a closed drain; the
  // service admits at arrival time and sheds (reject-newest) once
  // admission_capacity queries are pending. Wall-clock dependent, so
  // no thresholds — the only hard check is lossless accounting.
  // ----------------------------------------------------------------
  {
    const double offered_qps =
        static_cast<double>(options.get_int("offered-qps", 2000));
    serve::ServeOptions opts;
    opts.config = config_for(kGateGpus, seed);
    opts.batch_width = workload.batch_width;
    opts.num_lanes = lanes;
    opts.admission_capacity = 4 * static_cast<std::size_t>(
                                      workload.batch_width);
    const auto arrivals = serve::generate_poisson_arrivals(
        queries.size(), offered_qps, workload.seed);
    serve::QueryService service(ds.graph, opts);
    const auto results = service.run_open_loop(queries, arrivals);
    const auto& s = service.stats();
    const auto lost = s.queries -
                      (s.answered + s.timed_out + s.shed + s.failed);
    ok &= check(results.size() == queries.size() && lost == 0,
                "open-loop run lost queries", "open-loop");
    std::printf("open-loop (%d vGPUs, %d lanes, capacity %zu): offered "
                "%.0f QPS, achieved %.0f QPS, answered %llu, shed %llu, "
                "p99 %.2f ms\n",
                kGateGpus, lanes, opts.admission_capacity, s.offered_qps,
                s.qps, static_cast<unsigned long long>(s.answered),
                static_cast<unsigned long long>(s.shed), s.p99_ms);
  }

  const std::string trace_path = options.get_string("trace", "");
  if (!trace_path.empty()) {
    tracer.write_chrome_trace(trace_path);
    std::printf("trace written to %s (4-vGPU sweep row, batch-tagged)\n",
                trace_path.c_str());
  }

  std::printf("acceptance (>= %.0fx modeled W+H reduction batched vs "
              "individual at %d vGPUs on rmat + social, bit-identical "
              "answers, batch-tagged trace): %s\n",
              kMinRatio, kGateGpus, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
