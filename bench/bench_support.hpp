// Shared harness for the per-table / per-figure bench binaries.
//
// Every binary accepts:
//   --suite=fast|default|full   dataset suite size (default "default")
//   --seed=N                    generator/partitioner seed (default 1)
//   --csv=PATH                  also write the table as CSV
//   --trace=PATH                capture a Chrome trace of the first run
//                               (PATH.stats.json gets the stats +
//                               bottleneck report)
//   --fault-plan=SPEC           run under a deterministic fault plan
//                               (FaultPlan::parse syntax)
//   --fault-seed=N              ... or one derived from a seed (N != 0)
//   --wire-format=F             frontier-push wire format for every run:
//                               raw | bitmap | varint | auto
//                               (core::parse_wire_format; default raw)
//   --host-threads=N            host worker threads per run (0 = auto =
//                               hardware concurrency capped at 8;
//                               wall-clock only — results, W, H, and
//                               modeled times are bit-identical at any
//                               value)
//   --queries=N                 point queries per serve workload
//                               (serve-layer benches; others ignore it)
//   --query-seed=N              query-workload generator seed — the
//                               workload is deterministic in
//                               (graph, N, seed)
//   --batch-width=N             max distinct sources per serve batch
//                               (1..64)
// plus binary-specific flags documented in each main().
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "core/problem.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "vgpu/cost.hpp"
#include "vgpu/machine.hpp"

namespace mgg::bench {

/// One primitive run's outcome in bench terms.
struct Outcome {
  vgpu::RunStats stats;
  double modeled_ms = 0;
  double gteps = 0;  ///< graph |E| / modeled time (paper convention)
};

/// Run `primitive` in {"bfs","dobfs","sssp","cc","bc","pr"} on `g`
/// using `config.num_gpus` devices of a fresh machine of `gpu_model`.
/// Sources are chosen deterministically (highest-degree vertex).
/// `workload_scale` models the full-size dataset through the scaled
/// analog (see Machine::set_workload_scale); pass dataset_scale() for
/// registry datasets.
Outcome run_primitive(const std::string& primitive, const graph::Graph& g,
                      const std::string& gpu_model, core::Config config,
                      double workload_scale = 1.0);

/// paper |E| / analog |E| for a registry dataset (>= 1).
double dataset_scale(const graph::Dataset& ds);

/// The per-primitive Config defaults from Table I (duplication /
/// communication strategy), with `num_gpus` and `seed` applied.
core::Config config_for_primitive(const std::string& primitive,
                                  int num_gpus, std::uint64_t seed);

/// Dataset names for a suite size: "fast" (3 small), "default"
/// (6, two per family), "full" (all of Table II).
std::vector<std::string> suite_datasets(const std::string& suite);

/// Highest-degree vertex: the deterministic traversal source.
VertexT pick_source(const graph::Graph& g);

/// Serve-layer workload knobs from the common flags (--queries /
/// --query-seed / --batch-width), with the binary's defaults applied.
/// Feed `queries`/`seed` to serve::generate_queries for a workload
/// deterministic in (graph, queries, seed).
struct QueryWorkload {
  std::size_t queries = 256;
  std::uint64_t seed = 1;
  int batch_width = 64;
};
QueryWorkload parse_query_workload(const util::Options& options,
                                   QueryWorkload defaults = {});

/// Parse the common flags; returns the Options for further queries.
/// Rejects any flag that is neither common (suite/seed/csv/trace) nor
/// in `extra` (the binary's own flags), and arms --trace capture for
/// the next run_primitive() call.
util::Options parse_common(int argc, char** argv,
                           std::initializer_list<std::string_view> extra = {});

/// Print the table and honor --csv.
void emit(util::Table& table, const util::Options& options);

}  // namespace mgg::bench
