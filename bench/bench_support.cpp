#include "bench_support.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "primitives/bc.hpp"
#include "primitives/bfs.hpp"
#include "primitives/cc.hpp"
#include "primitives/dobfs.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/sssp.hpp"
#include "util/error.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/stats_io.hpp"
#include "vgpu/trace.hpp"

namespace mgg::bench {

namespace {
// Armed by parse_common(--trace=PATH); the next run_primitive() call
// attaches a tracer and writes the Chrome trace + stats JSON there,
// then disarms — bench binaries run many configurations, and the
// first run is the representative one to capture.
std::string g_trace_path;
// Armed by parse_common(--fault-plan=SPEC / --fault-seed=N): every
// run_primitive() call runs under the resulting deterministic fault
// plan. The armed plan is printed once so a red run names its seed.
std::string g_fault_plan;
std::uint64_t g_fault_seed = 0;
// Armed by parse_common(--wire-format=raw|bitmap|varint|auto): every
// run_primitive() call applies it to the Config, overriding the
// caller's wire_format. Default raw keeps every golden byte-identical.
core::WireFormat g_wire_format = core::WireFormat::kRawIds;
bool g_wire_format_set = false;
// Armed by parse_common(--host-threads=N): every run_primitive() call
// applies it to Config::host_threads. Pure wall-clock knob — results
// and all modeled quantities are bit-identical at any value.
int g_host_threads = 0;
bool g_host_threads_set = false;
}  // namespace

VertexT pick_source(const graph::Graph& g) {
  VertexT best = 0;
  SizeT best_degree = 0;
  for (VertexT v = 0; v < g.num_vertices; ++v) {
    if (g.degree(v) > best_degree) {
      best = v;
      best_degree = g.degree(v);
    }
  }
  return best;
}

core::Config config_for_primitive(const std::string& primitive, int num_gpus,
                                  std::uint64_t seed) {
  core::Config cfg;
  cfg.num_gpus = num_gpus;
  cfg.seed = seed;
  // Table I / §III-C prescriptions.
  if (primitive == "bfs" || primitive == "bc") {
    cfg.duplication = part::Duplication::kAll;
    cfg.comm = core::CommStrategy::kSelective;
  } else if (primitive == "dobfs" || primitive == "cc") {
    cfg.duplication = part::Duplication::kAll;
    cfg.comm = core::CommStrategy::kBroadcast;
  } else if (primitive == "sssp") {
    cfg.duplication = part::Duplication::kOneHop;
    cfg.comm = core::CommStrategy::kSelective;
  } else if (primitive == "pr") {
    cfg.duplication = part::Duplication::kAll;
    cfg.comm = core::CommStrategy::kSelective;
    cfg.scheme = vgpu::AllocationScheme::kFixedPrealloc;  // §VI-B
  } else {
    throw Error(Status::kNotFound, "unknown primitive '" + primitive + "'");
  }
  if (primitive == "cc") {
    cfg.scheme = vgpu::AllocationScheme::kFixedPrealloc;  // §VI-B
  }
  return cfg;
}

double dataset_scale(const graph::Dataset& ds) {
  if (ds.spec.paper_edges <= 0 || ds.graph.num_edges == 0) return 1.0;
  return std::max(1.0, ds.spec.paper_edges /
                           static_cast<double>(ds.graph.num_edges));
}

Outcome run_primitive(const std::string& primitive, const graph::Graph& g,
                      const std::string& gpu_model, core::Config config,
                      double workload_scale) {
  auto machine = vgpu::Machine::create(gpu_model, config.num_gpus);
  machine.set_workload_scale(workload_scale);
  if (g_wire_format_set) config.wire_format = g_wire_format;
  if (g_host_threads_set) config.host_threads = g_host_threads;
  std::unique_ptr<vgpu::Tracer> tracer;
  std::string trace_path;
  if (!g_trace_path.empty()) {
    trace_path.swap(g_trace_path);  // capture this run only
    tracer = std::make_unique<vgpu::Tracer>();
    machine.set_tracer(tracer.get());
  }
  const auto injector = vgpu::make_injector_from_flags(
      g_fault_plan, g_fault_seed, config.num_gpus);
  if (injector != nullptr) machine.set_fault_injector(injector.get());
  Outcome outcome;
  if (primitive == "bfs") {
    outcome.stats =
        prim::run_bfs(g, pick_source(g), machine, config).stats;
  } else if (primitive == "dobfs") {
    outcome.stats =
        prim::run_dobfs(g, pick_source(g), machine, config).stats;
  } else if (primitive == "sssp") {
    outcome.stats =
        prim::run_sssp(g, pick_source(g), machine, config).stats;
  } else if (primitive == "cc") {
    outcome.stats = prim::run_cc(g, machine, config).stats;
  } else if (primitive == "bc") {
    const auto result =
        prim::run_bc(g, machine, config, {pick_source(g)});
    outcome.stats = result.stats;
  } else if (primitive == "pr") {
    prim::PagerankOptions options;
    options.max_iterations = 20;
    outcome.stats = prim::run_pagerank(g, machine, config, options).stats;
  } else {
    throw Error(Status::kNotFound, "unknown primitive '" + primitive + "'");
  }
  outcome.modeled_ms = outcome.stats.modeled_total_s() * 1e3;
  // GTEPS against the modeled full-size edge count (paper convention).
  outcome.gteps = outcome.stats.gteps(static_cast<double>(g.num_edges) *
                                      workload_scale);
  if (tracer != nullptr) {
    machine.synchronize();
    tracer->write_chrome_trace(trace_path);
    vgpu::save_run_stats_json(trace_path + ".stats.json", outcome.stats, {},
                              tracer.get());
  }
  return outcome;
}

QueryWorkload parse_query_workload(const util::Options& options,
                                   QueryWorkload defaults) {
  QueryWorkload w = defaults;
  w.queries = static_cast<std::size_t>(options.get_int(
      "queries", static_cast<long long>(defaults.queries)));
  w.seed = static_cast<std::uint64_t>(options.get_int(
      "query-seed", static_cast<long long>(defaults.seed)));
  w.batch_width = static_cast<int>(
      options.get_int("batch-width", defaults.batch_width));
  MGG_REQUIRE(w.queries >= 1, "--queries must be >= 1");
  MGG_REQUIRE(w.batch_width >= 1 && w.batch_width <= 64,
              "--batch-width must be in [1, 64]");
  return w;
}

std::vector<std::string> suite_datasets(const std::string& suite) {
  if (suite == "fast") {
    return {"hollywood-2009", "indochina-2004", "rmat_n20_512"};
  }
  if (suite == "full") {
    return graph::table2_suite();
  }
  // default: two per family, moderate sizes.
  return {"hollywood-2009", "soc-orkut",   "indochina-2004",
          "uk-2002",        "rmat_n20_512", "rmat_n22_128"};
}

util::Options parse_common(int argc, char** argv,
                           std::initializer_list<std::string_view> extra) {
  util::Options options(argc, argv);
  std::vector<std::string_view> known = {"suite",      "seed",
                                         "csv",        "trace",
                                         "fault-plan", "fault-seed",
                                         "wire-format", "host-threads",
                                         "queries",    "query-seed",
                                         "batch-width"};
  known.insert(known.end(), extra.begin(), extra.end());
  options.check_unknown(known);
  g_trace_path = options.get_string("trace", "");
  g_fault_plan = options.get_string("fault-plan", "");
  g_fault_seed = static_cast<std::uint64_t>(options.get_int("fault-seed", 0));
  const std::string wire = options.get_string("wire-format", "");
  g_wire_format_set = !wire.empty();
  if (g_wire_format_set) {
    g_wire_format = core::parse_wire_format(wire);  // throws on typos
    std::fprintf(stderr, "[wire] format override: %s\n", wire.c_str());
  }
  g_host_threads_set = options.has("host-threads");
  if (g_host_threads_set) {
    g_host_threads = static_cast<int>(options.get_int("host-threads", 0));
    std::fprintf(stderr, "[host] worker threads override: %d\n",
                 g_host_threads);
  }
  if (!g_fault_plan.empty() || g_fault_seed != 0) {
    std::fprintf(stderr, "[fault] injection armed: %s\n",
                 g_fault_plan.empty()
                     ? ("seed " + std::to_string(g_fault_seed)).c_str()
                     : g_fault_plan.c_str());
  }
  return options;
}

void emit(util::Table& table, const util::Options& options) {
  table.print();
  const std::string csv = options.get_string("csv", "");
  if (!csv.empty()) table.write_csv(csv);
}

}  // namespace mgg::bench
