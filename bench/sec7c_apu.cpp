// §VII-C (Daga et al. comparison): discrete GPU vs integrated APU.
//
// The paper reports ~5-10x the TEPS of Hybrid++(CPU+dGPU) on 8 of 9
// graphs, with the road network the exception where the hybrid's lack
// of PCIe transfers wins ("Gunrock's performance and efficiency are
// only half of Daga's"). We reproduce the shape with an APU GpuModel
// (shared DDR3 bandwidth, small launch overhead, no PCIe) running the
// same BFS as the K40.
//
// Flags: --csv=PATH.
#include "bench_support.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  util::Table table("Sec. VII-C: 1x K40 vs APU, BFS (modeled)");
  table.set_columns({"graph", "K40 ms", "APU ms", "K40/APU speedup",
                     "paper says"},
                    2);

  struct Row {
    std::string name;
    graph::Graph g;
    double scale;
    const char* paper;
  };
  std::vector<Row> rows;
  for (const char* name :
       {"soc-LiveJournal1", "hollywood-2009", "indochina-2004"}) {
    auto ds = graph::build_dataset(name, seed);
    const double scale = bench::dataset_scale(ds);
    rows.push_back({name, std::move(ds.graph), scale, "5-10x"});
  }
  rows.push_back({"road 512x512",
                  graph::build_undirected(
                      graph::make_road_grid(512, 512, 0.05, seed)),
                  16.0, "~0.5x (APU wins)"});

  for (const auto& row : rows) {
    auto cfg_gpu = bench::config_for_primitive("bfs", 1, seed);
    const auto k40 =
        bench::run_primitive("bfs", row.g, "k40", cfg_gpu, row.scale);
    auto cfg_apu = bench::config_for_primitive("bfs", 1, seed);
    const auto apu =
        bench::run_primitive("bfs", row.g, "apu", cfg_apu, row.scale);
    table.add_row({row.name, k40.modeled_ms, apu.modeled_ms,
                   apu.modeled_ms / k40.modeled_ms, row.paper});
  }
  bench::emit(table, options);
  return 0;
}
