// §VII-A: the road-network pathology.
//
// "Road networks, and high-diameter, low-degree graphs in general,
// have very different scalability characteristics than power-law
// graphs. They have insufficient parallelism to saturate even 1 GPU,
// much less mGPUs; as a result, iteration overhead occupies a
// significant portion of the runtime, and we observed performance
// decreases on mGPU."
//
// This bench runs BFS and SSSP on road grids of growing size at 1-4
// GPUs and reports modeled times plus the fraction of runtime spent in
// per-iteration overhead. Expected shape: speedup < 1 on small grids,
// overhead fraction high, contrast with a power-law graph of similar
// edge count.
//
// Flags: --csv=PATH.
#include "bench_support.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  util::Table table("Sec. VII-A: road networks vs power-law scaling");
  table.set_columns({"graph", "algo", "D~", "1 GPU ms", "2 GPU ms",
                     "4 GPU ms", "speedup@4", "overhead frac @4"},
                    2);

  struct Workload {
    std::string name;
    graph::Graph g;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"road 128x128",
       graph::build_undirected(graph::make_road_grid(128, 128, 0.05, seed))});
  workloads.push_back(
      {"road 512x512",
       graph::build_undirected(graph::make_road_grid(512, 512, 0.05, seed))});
  {
    auto coo = graph::make_rmat(14, 32, graph::RmatParams::gtgraph(), seed);
    graph::assign_random_weights(coo, 0, 64, seed);
    workloads.push_back(
        {"rmat (same |E| as 512x512)", graph::build_undirected(coo)});
  }

  // Model the paper's regime: full-size road networks are ~1M-20M
  // vertices; scale the workload accordingly (x16 puts the 512x512
  // grid at ~4M intersections).
  const double ws = 16.0;

  for (auto& [name, g] : workloads) {
    const double diameter = graph::estimate_diameter(g, 4, seed);
    for (const std::string algo : {"bfs", "sssp"}) {
      std::vector<double> ms;
      double overhead_frac = 0;
      for (const int gpus : {1, 2, 4}) {
        auto cfg = bench::config_for_primitive(algo, gpus, seed);
        const auto outcome =
            bench::run_primitive(algo, g, "k40", cfg, ws);
        ms.push_back(outcome.modeled_ms);
        if (gpus == 4) {
          overhead_frac = outcome.stats.modeled_overhead_s /
                          outcome.stats.modeled_total_s();
        }
      }
      table.add_row({name, algo, diameter, ms[0], ms[1], ms[2],
                     ms[0] / ms[2], overhead_frac});
    }
  }
  std::printf("expected: road speedup@4 near or below 1 with a large "
              "overhead fraction; the rmat row scales normally\n");
  bench::emit(table, options);
  return 0;
}
