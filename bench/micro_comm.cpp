// Microbenchmark: comm-layer packaging + push throughput, flat pooled
// messages vs the previous nested-vector design, swept over 1-8 vGPUs.
//
// The baseline reconstructs the pre-refactor data path faithfully: a
// vector-of-vectors message built fresh every iteration, one virtual
// fill_associates() call per remote vertex (re-resolving the data
// slice and config per call, as the old primitive hooks did), delivery
// closures on the sender's comm stream, and drain-by-move (buffers
// freed after every combine). The flat path is the production CommBus:
// pooled slot-major messages, one batched gather per associate slot,
// recycled drain batches.
//
// Also instruments the global allocator to demonstrate the headline
// property: once warm, the flat path performs zero heap allocations
// across split -> package -> push -> drain -> combine.
//
// Measurement protocol, applied identically to both paths:
//  * Only the package+push section is timed. Delivery, drain and the
//    combine-side checksum are byte-identical work on both paths and
//    would dilute the comparison this benchmark exists to make.
//  * During the timed section every comm stream is parked behind a
//    gate event, so push() enqueues without waking the delivery
//    worker. On a host with few cores the woken worker otherwise
//    steals the CPU from the packaging loop mid-measurement, charging
//    delivery (identical on both paths) to the timed window. The next
//    iteration's gate-wait is queued behind this iteration's
//    deliveries *before* the gate fires, so a worker drains and
//    immediately re-blocks: no worker is ever runnable while the
//    timer is running. Per-iteration marker events stand in for
//    synchronize(), which would deadlock on the queued next gate.
//  * Throughput is computed from the fastest iteration across --reps
//    alternating runs; min-of-iterations removes scheduler noise that
//    mean times carry.
//  * The exit gate asserts only the deterministic properties: checksum
//    equality and zero steady-state allocations. The measured speedup
//    is reported but not gated: on an oversubscribed single-core host
//    the packaging loop's wall clock swings up to ~2x with the code
//    and heap placement of the *surrounding* binary (relinking with
//    `-falign-functions=64` alone moves the 4-vGPU ratio from ~2.2 to
//    ~1.7 with identical sources), so any threshold above that noise
//    floor fails on innocent relinks. A warning line still calls out
//    ratios below 1.2, which is outside everything we have observed
//    for a healthy flat path.
//
// Flags: --frontier=N total vertices per iteration (default 8192),
//        --iters=N (default 100), --reps=N (default 8), --csv=PATH.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "core/comm.hpp"
#include "util/timer.hpp"
#include "vgpu/stream.hpp"

// ---------------------------------------------------------------------
// Allocation instrumentation (whole process; scoped by sampling the
// counter around the measured loops).
// ---------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace mgg;

// ---------------------------------------------------------------------
// The pre-refactor message and bus, reconstructed for comparison.
// ---------------------------------------------------------------------
struct NestedMessage {
  int src_gpu = -1;
  std::vector<VertexT> vertices;
  std::vector<std::vector<VertexT>> vertex_assoc;
  std::vector<std::vector<ValueT>> value_assoc;
};

/// Per-vertex virtual packaging hook, as the enactor used to call it.
class NestedFiller {
 public:
  virtual ~NestedFiller() = default;
  virtual void fill_associates(VertexT v, NestedMessage& msg) = 0;
};

class NestedBus {
 public:
  explicit NestedBus(vgpu::Machine& machine)
      : machine_(&machine),
        locks_(machine.num_devices()),
        inboxes_(machine.num_devices()) {}

  void push(int src, int dst, NestedMessage message) {
    message.src_gpu = src;
    machine_->device(src).comm_stream().submit(
        [this, dst, msg = std::move(message)]() mutable {
          std::lock_guard<std::mutex> lock(locks_[dst]);
          inboxes_[dst].push_back(std::move(msg));
        });
  }

  std::vector<NestedMessage> drain(int dst) {
    std::lock_guard<std::mutex> lock(locks_[dst]);
    auto messages = std::move(inboxes_[dst]);
    inboxes_[dst].clear();
    return messages;
  }

 private:
  vgpu::Machine* machine_;
  std::vector<std::mutex> locks_;
  std::vector<std::vector<NestedMessage>> inboxes_;
};

// ---------------------------------------------------------------------
// Synthetic SSSP-shaped workload: a fixed total frontier partitioned
// over the GPUs (strong scaling, like the paper's fixed-dataset
// sweeps — this also keeps the gather working set identical across
// sweep rows so they compare packaging, not cache footprint). Every
// GPU emits its share of the frontier; vertices are owned round-robin
// by the peers and each sent vertex carries one VertexT and one ValueT
// associate.
// ---------------------------------------------------------------------
struct Workload {
  int gpus;
  SizeT frontier;                          // total per iteration
  std::vector<VertexT> preds;              // associate source arrays
  std::vector<ValueT> dist;
  std::vector<int> owner;                  // like SubGraph::owner
  std::vector<std::vector<VertexT>> frontiers;  // materialized, per GPU

  explicit Workload(int n, SizeT f) : gpus(n), frontier(f) {
    const std::size_t universe = static_cast<std::size_t>(f);
    const SizeT per_gpu = f / n;
    preds.resize(universe);
    dist.resize(universe);
    owner.resize(universe);
    for (std::size_t v = 0; v < universe; ++v) {
      preds[v] = static_cast<VertexT>(universe - v);
      dist[v] = static_cast<ValueT>(v) * 0.5f;
      owner[v] = static_cast<int>(v % n);
    }
    // Materialize each GPU's (identical every iteration) output
    // frontier up front: the enactor reads frontier.output() from
    // memory, it does not synthesize vertices in the split loop.
    frontiers.resize(n);
    for (int gpu = 0; gpu < n; ++gpu) {
      auto& out = frontiers[gpu];
      out.reserve(per_gpu);
      for (SizeT i = 0; i < per_gpu; ++i) {
        out.push_back(static_cast<VertexT>(
            (static_cast<VertexT>(gpu) + static_cast<VertexT>(i) * 7u) %
            universe));
      }
    }
  }

  double items_per_iter() const {
    double items = 0;
    for (int gpu = 0; gpu < gpus; ++gpu) {
      for (const VertexT v : frontiers[gpu]) {
        if (owner[v] != gpu) ++items;
      }
    }
    return items;
  }
};

// Mirror of the real pre-refactor hook body (see the seed's
// SsspEnactor::fill_associates): the per-vertex fill re-resolved the
// problem's data slice, re-checked the config flag, and reached the
// source arrays through the slice indirection on every single vertex —
// exactly the work the batched fill_*_associates hooks now hoist out
// of the loop.
struct NestedProblemMirror {
  struct DataSlice {
    const VertexT* preds;
    const ValueT* dist;
  };
  std::vector<DataSlice> slices;
  bool mark_predecessors = true;
  DataSlice& data(int gpu) { return slices[gpu]; }
};

class WorkloadFiller : public NestedFiller {
 public:
  WorkloadFiller(NestedProblemMirror& problem, int gpu)
      : problem_(&problem), gpu_(gpu) {}
  void fill_associates(VertexT v, NestedMessage& msg) override {
    NestedProblemMirror::DataSlice& d = problem_->data(gpu_);
    msg.value_assoc[0].push_back(d.dist[v]);
    if (problem_->mark_predecessors) {
      msg.vertex_assoc[0].push_back(d.preds[v]);
    }
  }

 private:
  NestedProblemMirror* problem_;
  int gpu_;
};

// In the real enactor the per-vertex hook was a virtual call on
// EnactorBase made from another translation unit: a true indirect call
// the optimizer cannot devirtualize or inline, forcing the message's
// vector internals to be reloaded on every vertex. A same-TU benchmark
// would quietly devirtualize it and flatter the baseline; routing the
// pointer through a volatile slot restores the original opacity.
NestedFiller* opaque(NestedFiller* filler) {
  static NestedFiller* volatile slot;
  slot = filler;
  return slot;
}

double checksum_nested(const std::vector<NestedMessage>& messages) {
  double sum = 0;
  for (const auto& m : messages) {
    for (std::size_t i = 0; i < m.vertices.size(); ++i) {
      sum += m.vertices[i] + m.vertex_assoc[0][i] + m.value_assoc[0][i];
    }
  }
  return sum;
}

constexpr int kWarmupRounds = 5;

// Park every comm stream behind `gate` so pushes submitted in the
// timed section enqueue without waking the delivery workers.
void park_comm_streams(vgpu::Machine& machine, const vgpu::Event& gate) {
  for (int d = 0; d < machine.num_devices(); ++d) {
    machine.device(d).comm_stream().wait_event(gate);
  }
}

// Gate/marker scaffolding for one measured run. All events are created
// up front (Event construction allocates; the measured loop must not),
// and the parking protocol keeps every comm worker blocked for the
// whole of every timed window: the wait on gate[it + 1] is queued
// behind iteration it's deliveries before gate[it] fires, so a woken
// worker drains its inbox traffic and immediately re-blocks.
struct RunGates {
  std::vector<vgpu::Event> gates;               // one per round, + final
  std::vector<std::vector<vgpu::Event>> delivered;  // [round][device]
  vgpu::Machine* machine;
  int devices;

  RunGates(vgpu::Machine& m, int rounds)
      : gates(rounds + 1),
        delivered(rounds),
        machine(&m),
        devices(m.num_devices()) {
    // resize(), not vector(rounds, row): copying a prototype row would
    // alias every round's markers onto one shared event state.
    for (auto& row : delivered) row.resize(devices);
    park_comm_streams(m, gates[0]);
    // Give the workers time to dequeue the wait task and block on the
    // gate before the first round starts; from then on the hand-over
    // protocol in finish_round() keeps them parked.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  /// Called after round `it`'s pushes: chain the workers onto the next
  /// gate, release this round's traffic, and wait (on the host) until
  /// every delivery has landed. Untimed.
  void finish_round(int it) {
    for (int d = 0; d < devices; ++d) {
      machine->device(d).comm_stream().submit(
          [marker = delivered[it][d]]() mutable { marker.fire(); });
    }
    park_comm_streams(*machine, gates[it + 1]);
    gates[it].fire();
    for (int d = 0; d < devices; ++d) delivered[it][d].wait();
  }

  /// Unblock the final gate-wait so the streams can drain and join.
  ~RunGates() {
    gates.back().fire();
    for (int d = 0; d < devices; ++d) {
      machine->device(d).comm_stream().synchronize();
    }
  }
};

double run_nested(vgpu::Machine& machine, const Workload& w, int iters,
                  double* out_best_iter_s) {
  NestedBus bus(machine);
  NestedProblemMirror problem;
  problem.slices.resize(w.gpus);
  for (auto& slice : problem.slices) {
    slice.preds = w.preds.data();
    slice.dist = w.dist.data();
  }
  std::vector<WorkloadFiller> fillers;
  for (int gpu = 0; gpu < w.gpus; ++gpu) fillers.emplace_back(problem, gpu);
  RunGates rg(machine, kWarmupRounds + iters);
  const int n = w.gpus;
  double sum = 0;
  double best_iter_s = 1e300;
  util::WallTimer timer;
  // Warm-up rounds mirror the flat path's (keeps the checksums
  // comparable); the nested path has nothing to warm, so round 0 is
  // representative either way.
  for (int it = 0; it < kWarmupRounds + iters; ++it) {
    const bool measured = it >= kWarmupRounds;
    if (measured) timer.restart();
    for (int gpu = 0; gpu < n; ++gpu) {
      // Route + package, one fresh nested message per peer, one
      // virtual call per remote vertex (the old inner loop).
      std::vector<NestedMessage> outbox(n);
      for (auto& m : outbox) {
        m.vertex_assoc.resize(1);
        m.value_assoc.resize(1);
      }
      NestedFiller& filler = *opaque(&fillers[gpu]);
      for (const VertexT v : w.frontiers[gpu]) {
        const int peer = w.owner[v];
        if (peer == gpu) continue;
        outbox[peer].vertices.push_back(v);
        filler.fill_associates(v, outbox[peer]);
      }
      for (int peer = 0; peer < n; ++peer) {
        if (peer == gpu || outbox[peer].vertices.empty()) continue;
        bus.push(gpu, peer, std::move(outbox[peer]));
      }
    }
    if (measured) best_iter_s = std::min(best_iter_s, timer.seconds());
    rg.finish_round(it);
    for (int gpu = 0; gpu < n; ++gpu) {
      const auto messages = bus.drain(gpu);  // move out, free after use
      sum += checksum_nested(messages);
    }
  }
  *out_best_iter_s = best_iter_s;
  return sum;
}

double run_flat(vgpu::Machine& machine, const Workload& w, int iters,
                double* out_best_iter_s, std::uint64_t* out_allocs) {
  core::CommBus bus(machine);
  const int n = w.gpus;
  std::vector<std::vector<VertexT>> peer_sources(n);
  // Constructed outside the allocation-counting window: gate/marker
  // events are measurement scaffolding, not part of the message path.
  RunGates rg(machine, kWarmupRounds + iters);
  double sum = 0;
  double best_iter_s = 1e300;
  util::WallTimer timer;

  auto iterate = [&](int first, int count, bool measured) {
    for (int it = first; it < first + count; ++it) {
      if (measured) timer.restart();
      for (int gpu = 0; gpu < n; ++gpu) {
        for (auto& sources : peer_sources) sources.clear();
        for (const VertexT v : w.frontiers[gpu]) {
          const int peer = w.owner[v];
          if (peer == gpu) continue;
          peer_sources[peer].push_back(v);
        }
        for (int peer = 0; peer < n; ++peer) {
          const auto& sources = peer_sources[peer];
          if (peer == gpu || sources.empty()) continue;
          core::Message msg = bus.acquire();
          msg.set_layout(1, 1, sources.size());
          const auto preds_out = msg.vertex_slot(0);
          const auto dist_out = msg.value_slot(0);
          // Batched gathers: one pass per associate slot.
          for (std::size_t i = 0; i < sources.size(); ++i) {
            msg.vertices[i] = sources[i];
          }
          for (std::size_t i = 0; i < sources.size(); ++i) {
            preds_out[i] = w.preds[sources[i]];
          }
          for (std::size_t i = 0; i < sources.size(); ++i) {
            dist_out[i] = w.dist[sources[i]];
          }
          bus.push(gpu, peer, std::move(msg));
        }
      }
      if (measured) best_iter_s = std::min(best_iter_s, timer.seconds());
      rg.finish_round(it);
      for (int gpu = 0; gpu < n; ++gpu) {
        const auto& messages = bus.drain(gpu);
        for (const core::Message& m : messages) {
          const auto preds_in = m.vertex_slot(0);
          const auto dist_in = m.value_slot(0);
          for (std::size_t i = 0; i < m.vertices.size(); ++i) {
            sum += m.vertices[i] + preds_in[i] + dist_in[i];
          }
        }
        bus.release_drained(gpu);
      }
    }
  };

  // Warm the pool, the stream rings, and the scratch.
  iterate(0, kWarmupRounds, false);
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  iterate(kWarmupRounds, iters, true);
  *out_best_iter_s = best_iter_s;
  *out_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"frontier", "iters", "reps"});
  const auto frontier =
      static_cast<SizeT>(options.get_int("frontier", 8192));
  const int iters = static_cast<int>(options.get_int("iters", 100));
  const int reps = static_cast<int>(options.get_int("reps", 8));

  util::Table table("micro: package+push throughput, flat pooled vs "
                    "nested (total frontier " +
                    std::to_string(frontier) + ", 2 associates)");
  table.set_columns({"vGPUs", "items/iter", "nested Mit/s", "flat Mit/s",
                     "speedup", "allocs (steady)"},
                    1);

  // The gate must be earned by a measured 4-vGPU row; a degenerate
  // workload (--frontier=0) that skips the row must not pass vacuously.
  bool ok = false;
  for (const int gpus : {1, 2, 4, 8}) {
    Workload w(gpus, frontier);
    const double items = w.items_per_iter();
    auto machine = vgpu::Machine::create("k40", gpus);
    double nested_s = 1e300, flat_s = 1e300;
    std::uint64_t flat_allocs = 0;  // worst rep
    for (int rep = 0; rep < reps; ++rep) {
      double s = 0;
      const double nested_sum = run_nested(machine, w, iters, &s);
      nested_s = std::min(nested_s, s);
      std::uint64_t allocs = 0;
      const double flat_sum = run_flat(machine, w, iters, &s, &allocs);
      flat_s = std::min(flat_s, s);
      flat_allocs = std::max(flat_allocs, allocs);
      if (nested_sum != flat_sum) {
        std::fprintf(stderr, "checksum mismatch at %d GPUs: %f vs %f\n",
                     gpus, nested_sum, flat_sum);
        return 1;
      }
    }
    if (items == 0) {
      // Single GPU: everything is local, nothing is packaged.
      table.add_row({static_cast<long long>(gpus), 0ll, std::string("-"),
                     std::string("-"), std::string("-"), std::string("-")});
      continue;
    }
    const double nested_mips = items / nested_s / 1e6;
    const double flat_mips = items / flat_s / 1e6;
    const double speedup = flat_mips / nested_mips;
    table.add_row({static_cast<long long>(gpus),
                   static_cast<long long>(items), nested_mips, flat_mips,
                   speedup, static_cast<long long>(flat_allocs)});
    if (gpus == 4) {
      // The acceptance gate is the 4-vGPU row. Only the deterministic
      // allocation property is gated; the wall-clock ratio is layout-
      // sensitive on shared hosts (see the header comment).
      ok = flat_allocs == 0;
      if (speedup < 1.2) {
        std::fprintf(stderr,
                     "warning: flat/nested ratio %.2f at 4 vGPUs is below "
                     "the observed noise floor; investigate\n",
                     speedup);
      }
    }
  }
  bench::emit(table, options);
  std::printf("acceptance at 4 vGPUs (zero steady-state message "
              "allocations; speedup reported, not gated): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
