// Microbenchmark + exit gate: compressed frontier pushes (bitmap /
// delta-varint wire formats) vs raw vertex IDs, on the rmat family the
// paper benchmarks with (§V-A comm volume).
//
// Protocol: one BFS per {raw, bitmap, varint, auto} x {bsp, pipeline}
// cell at 4 vGPUs, dense frontiers enabled so the run crosses the
// sparse fringe / dense middle boundary both ways. Every cell is
// checked bit-identical to the raw run of its sync mode: same labels,
// same predecessors, same iterations / edge work / communicated items
// / combine items. The formats are lossless and order-preserving, so
// ANY result or item-count drift is a bug, not noise.
//
// The exit gate asserts only deterministic modeled properties — no
// wall-clock thresholds (modeled bytes are seed-deterministic; host
// scheduling noise cannot move them):
//  * bit-identical results + item counts for every cell (above);
//  * per-format byte split sums to total_comm_bytes, encoded ==
//    decoded vertex counts;
//  * kAuto at 4 vGPUs (BSP) cuts total_comm_bytes by >= 30% vs raw;
//  * the gate is non-vacuous: that same run must exercise BOTH
//    compressed codecs (wire_bytes_bitmap > 0 AND wire_bytes_delta
//    > 0) — a config that silently falls back to raw everywhere
//    cannot pass on an empty measurement.
//
// Flags: --scale=N rmat scale (default 10), --edge-factor=N (default
//        16), --csv=PATH. (--wire-format from the common flag set is
//        ignored here: this binary's whole point is to sweep formats.)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "graph/generators.hpp"
#include "primitives/bfs.hpp"
#include "util/table.hpp"
#include "vgpu/machine.hpp"

namespace {

using namespace mgg;

constexpr int kGpus = 4;
constexpr double kMinReduction = 0.30;

struct Cell {
  prim::BfsResult result;
  vgpu::RunStats stats;
};

Cell run_cell(const graph::Graph& g, VertexT src, core::WireFormat f,
              core::SyncMode mode) {
  auto machine = vgpu::Machine::create("k40", kGpus);
  core::Config cfg;
  cfg.num_gpus = kGpus;
  // No predecessor marking: associates ride the wire uncompressed (the
  // codecs cover vertex IDs), so a 4-byte pred per 4-byte ID would cap
  // the best possible reduction near the 30% gate and turn it into a
  // knife-edge. tests/wire_format_test.cpp pins the with-predecessors
  // differential; this gate measures ID compression.
  cfg.mark_predecessors = false;
  cfg.dense_threshold = 0.05;  // engage dense (ascending) frontiers
  cfg.wire_format = f;
  cfg.sync_mode = mode;
  Cell cell{prim::run_bfs(g, src, machine, cfg), {}};
  cell.stats = cell.result.stats;
  return cell;
}

bool check(bool ok, const char* what, const std::string& label) {
  if (!ok) std::fprintf(stderr, "FAIL [%s]: %s\n", label.c_str(), what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"scale", "edge-factor"});
  const int scale = static_cast<int>(options.get_int("scale", 10));
  const double edge_factor = options.get_double("edge-factor", 16);

  const auto g =
      graph::build_undirected(graph::make_rmat(scale, edge_factor));
  const VertexT src = bench::pick_source(g);
  std::printf("rmat scale %d ef %.0f: %u vertices, %u edges, %d vGPUs\n",
              scale, edge_factor, g.num_vertices, g.num_edges, kGpus);

  util::Table table("micro: wire-format comm volume, BFS on rmat (" +
                    std::to_string(kGpus) + " vGPUs, modeled bytes)");
  table.set_columns({"mode", "format", "comm items", "bytes", "raw B",
                     "bitmap B", "varint B", "saved %"},
                    1);

  bool ok = true;
  // The gate must be earned on a real measurement: a run whose raw
  // baseline ships zero bytes (e.g. a degenerate --scale) passes
  // nothing.
  bool gate_earned = false;
  for (const core::SyncMode mode :
       {core::SyncMode::kBspBarrier, core::SyncMode::kEventPipeline}) {
    const Cell base = run_cell(g, src, core::WireFormat::kRawIds, mode);
    for (const core::WireFormat f :
         {core::WireFormat::kRawIds, core::WireFormat::kBitmap,
          core::WireFormat::kDeltaVarint, core::WireFormat::kAuto}) {
      const Cell cell = f == core::WireFormat::kRawIds
                            ? base
                            : run_cell(g, src, f, mode);
      const auto& s = cell.stats;
      const std::string label =
          std::string(to_string(mode)) + "/" + to_string(f);
      // Bit-identical results and item-shaped counters vs raw.
      ok &= check(cell.result.labels == base.result.labels,
                  "BFS labels differ from raw", label);
      ok &= check(cell.result.preds == base.result.preds,
                  "BFS predecessors differ from raw", label);
      ok &= check(s.iterations == base.stats.iterations,
                  "iteration count differs from raw", label);
      ok &= check(s.total_edges == base.stats.total_edges,
                  "edge work differs from raw", label);
      ok &= check(s.total_comm_items == base.stats.total_comm_items,
                  "communicated items differ from raw", label);
      ok &= check(s.total_combine_items == base.stats.total_combine_items,
                  "combined items differ from raw", label);
      // Accounting invariants.
      ok &= check(s.wire_bytes_raw + s.wire_bytes_bitmap +
                          s.wire_bytes_delta ==
                      s.total_comm_bytes,
                  "per-format byte split does not sum to total", label);
      ok &= check(s.wire_encode_vertices == s.wire_decode_vertices,
                  "encoded != decoded vertex count", label);
      ok &= check(s.total_comm_bytes <= base.stats.total_comm_bytes,
                  "compressed run shipped more bytes than raw", label);
      const double vs_raw =
          base.stats.total_comm_bytes == 0
              ? 0.0
              : 1.0 - static_cast<double>(s.total_comm_bytes) /
                          static_cast<double>(base.stats.total_comm_bytes);
      table.add_row({std::string(to_string(mode)),
                     std::string(to_string(f)),
                     static_cast<long long>(s.total_comm_items),
                     static_cast<long long>(s.total_comm_bytes),
                     static_cast<long long>(s.wire_bytes_raw),
                     static_cast<long long>(s.wire_bytes_bitmap),
                     static_cast<long long>(s.wire_bytes_delta),
                     f == core::WireFormat::kRawIds
                         ? util::Cell(std::string("-"))
                         : util::Cell(vs_raw * 100)});
      // The headline gate: kAuto on the BSP schedule.
      if (f == core::WireFormat::kAuto &&
          mode == core::SyncMode::kBspBarrier &&
          base.stats.total_comm_bytes > 0) {
        gate_earned = true;
        ok &= check(vs_raw >= kMinReduction,
                    "kAuto byte reduction below the 30% gate", label);
        ok &= check(s.wire_bytes_bitmap > 0,
                    "gate is vacuous: bitmap codec never engaged", label);
        ok &= check(s.wire_bytes_delta > 0,
                    "gate is vacuous: varint codec never engaged", label);
      }
    }
  }
  ok &= check(gate_earned, "gate never measured (degenerate workload?)",
              "gate");
  bench::emit(table, options);
  std::printf("acceptance at %d vGPUs (bit-identical results, byte "
              "accounting, >= %.0f%% kAuto reduction, both codecs "
              "exercised): %s\n",
              kGpus, kMinReduction * 100, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
