// Table IV: comparison with out-of-core GPU and CPU systems.
//
// Rows follow the paper: for each highlighted dataset and primitive,
// the published reference time next to our framework's modeled time on
// the smallest viable GPU count, plus the in-repo out-of-core GAS
// baseline (GraphReduce-style streaming) to show *why* in-core wins
// when the graph fits: the streaming engine pays the full PCIe pass
// every iteration.
//
// Flags: --csv=PATH.
#include <string>

#include "baselines/frog_async.hpp"
#include "baselines/out_of_core.hpp"
#include "baselines/totem_hybrid.hpp"
#include "bench_support.hpp"

namespace {

struct Row {
  const char* graph;
  const char* algo;        // bfs / sssp / cc / pr / bc
  const char* ref_system;  // published system & hardware
  double ref_seconds;      // published time
  int our_gpus;
  double paper_ours_seconds;  // the paper's measured time
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const std::vector<Row> rows = {
      {"uk-2002", "bfs", "GraphReduce 1xK40", 49, 1, 0.059},
      {"uk-2002", "sssp", "GraphReduce 1xK40", 80, 1, 0.76},
      {"uk-2002", "cc", "GraphReduce 1xK40", 153, 1, 1.85},
      {"uk-2002", "pr", "GraphReduce 1xK40", 162, 1, 1.99},
      {"twitter-rv", "bfs", "Frog 1xK40", 46, 1, 0.098},
      {"twitter-rv", "cc", "Frog 1xK40", 29, 3, 1.71},
      {"twitter-rv", "pr", "Frog 1xK40", 80, 1, 49.7},
      {"soc-LiveJournal1", "bfs", "Frog 1xK40", 0.0664, 1, 0.0122},
      {"soc-LiveJournal1", "cc", "Frog 1xK40", 0.213, 1, 0.0936},
      {"soc-LiveJournal1", "pr", "Frog 1xK40", 0.105, 1, 0.0457},
      {"twitter-rv", "sssp", "GraphMap 84 cores", 126, 2, 2.20},
      {"twitter-rv", "cc", "GraphMap 84 cores", 304, 3, 1.71},
      {"twitter-rv", "pr", "GraphMap 84 cores", 149, 1, 49.7},
      {"twitter-mpi", "bfs", "Totem 2xK40+2xCPU", 0.698, 4, 0.0785},
      {"twitter-mpi", "sssp", "Totem 2xK40+2xCPU", 2.67, 4, 1.62},
      {"twitter-mpi", "bc", "Totem 2xK40+2xCPU", 3.90, 4, 2.37},
  };

  util::Table table("Table IV: vs out-of-core GPU / CPU systems (seconds)");
  table.set_columns({"graph", "algo", "reference system", "ref s",
                     "ours s (modeled)", "speedup", "paper speedup",
                     "ooc-GAS baseline s"},
                    3);

  for (const auto& row : rows) {
    const auto ds = graph::build_dataset(row.graph, seed);
    const double scale = bench::dataset_scale(ds);
    auto cfg = bench::config_for_primitive(row.algo, row.our_gpus, seed);
    const auto ours =
        bench::run_primitive(row.algo, ds.graph, "k40", cfg, scale);
    const double ours_s = ours.stats.modeled_total_s();

    // In-repo out-of-core baseline (skip for bc: GAS engines in this
    // class did not implement it).
    double ooc_s = 0;
    if (std::string(row.algo) != "bc") {
      auto machine = vgpu::Machine::create("k40", 1);
      const auto result = baselines::out_of_core_gas(
          ds.graph, row.algo, bench::pick_source(ds.graph), machine, 20);
      // Stream volume and compute scale ~linearly with |E|.
      ooc_s = result.stats.modeled_total_s() * scale;
    }

    table.add_row({row.graph, row.algo, row.ref_system, row.ref_seconds,
                   ours_s, row.ref_seconds / ours_s,
                   row.ref_seconds / row.paper_ours_seconds, ooc_s});
  }
  bench::emit(table, options);

  // --- Second table: the competing *approaches* rebuilt in-repo, all
  // on the same uk-2002 analog and device model, so the architecture
  // comparison (in-core framework vs streaming GAS vs async coloring
  // vs hybrid CPU+GPU) is apples-to-apples.
  {
    const auto ds = graph::build_dataset("uk-2002", seed);
    const double scale = bench::dataset_scale(ds);
    const VertexT src = bench::pick_source(ds.graph);
    util::Table approaches(
        "Approach baselines on uk-2002 (modeled seconds, 1 GPU)");
    approaches.set_columns(
        {"algo", "ours (framework)", "ooc-GAS (GraphReduce-like)",
         "async coloring (Frog-like)", "hybrid CPU+GPU (Totem-like)"},
        3);
    for (const std::string algo : {"bfs", "sssp", "cc", "pr"}) {
      auto cfg = bench::config_for_primitive(algo, 1, seed);
      const double ours =
          bench::run_primitive(algo, ds.graph, "k40", cfg, scale)
              .stats.modeled_total_s();

      auto m_ooc = vgpu::Machine::create("k40", 1);
      const double ooc =
          baselines::out_of_core_gas(ds.graph, algo, src, m_ooc, 20)
              .stats.modeled_total_s() *
          scale;

      auto m_frog = vgpu::Machine::create("k40", 1);
      m_frog.set_workload_scale(scale);
      const double frog =
          baselines::frog_async(ds.graph, algo, src, m_frog, 20)
              .stats.modeled_total_s();

      double totem = 0;
      if (algo != "cc") {  // beyond Totem's direct-neighbor model
        auto m_totem = vgpu::Machine::create("k40", 1);
        m_totem.set_workload_scale(scale);
        totem = baselines::totem_hybrid(ds.graph, algo, src, m_totem, 0.8,
                                        20)
                    .stats.modeled_total_s();
      }
      approaches.add_row({algo, ours, ooc, frog, totem});
    }
    std::printf("(totem-like CC is 0: pointer jumping exceeds the "
                "hybrid's direct-neighbor model — the paper's "
                "generality critique)\n");
    bench::emit(approaches, options);
  }
  return 0;
}
