// Serve-layer resilience gate: injected faults degrade throughput,
// never correctness or availability (docs/architecture.md §15).
//
// Three phases on the rmat analog at 4 vGPUs x 3 lanes:
//
//   A. Fault-free baseline. Every query answers kOk and bit-identical
//      to its individual single-source run; every supervision counter
//      (restarts, requeues, sheds, failures, injected faults) is zero
//      — the resilience layer must be inert when nothing fails; and
//      two identical runs report bit-identical modeled stats (the
//      batch-index-order summation contract).
//
//   B. Chaos. A scripted permanent kernel fault takes out a device on
//      lane 0 mid-run (--fault-plan style, armed on lane 0 only) while
//      a seeded plan (vgpu::lane_fault_seed) peppers every lane with
//      independent transients. Gates: zero queries lost (answered +
//      timed_out + shed + failed == submitted), >= 1 lane restart and
//      >= 1 batch requeue actually happened (non-vacuous), >= 1 fault
//      actually fired, every answered query is STILL bit-identical to
//      its fault-free individual run, answers flowed from lanes other
//      than the faulted one, and the service survives (not every lane
//      quarantined).
//
//   C. Open loop. A Poisson arrival burst far above capacity against a
//      small admission bound: the service sheds (kResourceExhausted)
//      instead of queueing without bound, still answers what it
//      admitted bit-identically, loses nothing, and reports offered vs
//      achieved QPS.
//
// All gate quantities are modeled or structural; no wall-clock
// thresholds (wall time only paces the open-loop arrivals).
//
// Flags: the common set (--queries/--query-seed/--batch-width) plus
// --lanes=N (default 3).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "primitives/bfs.hpp"
#include "primitives/sssp.hpp"
#include "serve/query.hpp"
#include "serve/service.hpp"
#include "util/table.hpp"
#include "vgpu/machine.hpp"

namespace {

using namespace mgg;

constexpr int kGpus = 4;
const char* const kDataset = "rmat_n20_512";

bool check(bool ok, const char* what, const std::string& label) {
  if (!ok) std::fprintf(stderr, "FAIL [%s]: %s\n", label.c_str(), what);
  return ok;
}

/// Fault-free per-query reference answers from individual
/// single-source runs, cached per (class, src).
class Reference {
 public:
  Reference(const graph::Graph& g, const core::Config& cfg)
      : g_(g), cfg_(cfg), machine_(vgpu::Machine::create("k40", kGpus)) {}

  /// True iff `r` (a kOk result for `q`) matches the individual run.
  bool matches(const serve::Query& q, const serve::QueryResult& r) {
    if (q.kind == serve::QueryKind::kSsspDist) {
      const auto& dist = sssp_labels(q.src);
      const ValueT want = dist[q.dst];
      // Bit-level: unreachable stays infinity, reachable stays exact.
      return r.dist == want && r.reachable == (want < kInf);
    }
    const auto& depth = bfs_labels(q.src);
    const VertexT want = depth[q.dst];
    if (q.kind == serve::QueryKind::kBfsDepth && r.depth != want)
      return false;
    return r.reachable == (want != kInvalidVertex);
  }

 private:
  const std::vector<VertexT>& bfs_labels(VertexT src) {
    auto it = bfs_.find(src);
    if (it == bfs_.end()) {
      it = bfs_.emplace(src, prim::run_bfs(g_, src, machine_, cfg_).labels)
               .first;
    }
    return it->second;
  }
  const std::vector<ValueT>& sssp_labels(VertexT src) {
    auto it = sssp_.find(src);
    if (it == sssp_.end()) {
      it = sssp_.emplace(src, prim::run_sssp(g_, src, machine_, cfg_).dist)
               .first;
    }
    return it->second;
  }

  static constexpr ValueT kInf = std::numeric_limits<ValueT>::infinity();
  const graph::Graph& g_;
  core::Config cfg_;
  vgpu::Machine machine_;
  std::map<VertexT, std::vector<VertexT>> bfs_;
  std::map<VertexT, std::vector<ValueT>> sssp_;
};

/// Answered results all bit-identical to their individual runs.
bool answers_identical(std::span<const serve::Query> queries,
                       std::span<const serve::QueryResult> results,
                       Reference& ref, const std::string& label) {
  bool ok = true;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (results[i].status != Status::kOk) continue;
    if (!ref.matches(queries[i], results[i])) {
      std::fprintf(stderr,
                   "FAIL [%s]: query %llu answer differs from its "
                   "individual run\n",
                   label.c_str(),
                   static_cast<unsigned long long>(results[i].id));
      ok = false;
    }
  }
  return ok;
}

std::uint64_t lost(const serve::ServeStats& s) {
  return s.queries - (s.answered + s.timed_out + s.shed + s.failed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"lanes"});
  bench::QueryWorkload defaults;
  defaults.queries = 96;
  const auto workload = bench::parse_query_workload(options, defaults);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const int lanes = static_cast<int>(options.get_int("lanes", 3));

  const auto ds = graph::build_dataset(kDataset, seed);
  const auto& g = ds.graph;
  const auto queries = serve::generate_queries(g, workload.queries,
                                               workload.seed, g.has_values());

  core::Config cfg;
  cfg.num_gpus = kGpus;
  cfg.seed = seed;
  cfg.max_oom_regrows = 2;    // absorb short alloc-transient windows
  cfg.max_comm_retries = 3;   // absorb short transfer-transient windows
  Reference ref(g, cfg);

  bool ok = true;
  util::Table table("serve chaos: " + std::string(kDataset) + " @ " +
                    std::to_string(kGpus) + " vGPUs x " +
                    std::to_string(lanes) + " lanes, " +
                    std::to_string(queries.size()) + " queries");
  table.set_columns({"phase", "answered", "timed out", "shed", "failed",
                     "requeues", "restarts", "faults", "QPS"},
                    1);

  // ----------------------------------------------------------------
  // Phase A: fault-free — resilience layer must be inert.
  // ----------------------------------------------------------------
  serve::ServeStats first_run;
  {
    serve::ServeOptions opts;
    opts.config = cfg;
    opts.batch_width = workload.batch_width;
    opts.num_lanes = lanes;
    serve::QueryService service(g, opts);
    const auto results = service.run(queries);
    const auto& s = service.stats();
    first_run = s;
    table.add_row({std::string("fault-free"),
                   static_cast<long long>(s.answered),
                   static_cast<long long>(s.timed_out),
                   static_cast<long long>(s.shed),
                   static_cast<long long>(s.failed),
                   static_cast<long long>(s.requeues),
                   static_cast<long long>(s.lane_restarts),
                   static_cast<long long>(s.faults_injected), s.qps});
    ok &= check(s.answered == queries.size(),
                "fault-free run failed to answer everything", "A");
    ok &= check(s.requeues == 0 && s.lane_restarts == 0 && s.shed == 0 &&
                    s.failed == 0 && s.timed_out == 0 &&
                    s.faults_injected == 0 && s.lanes_quarantined == 0,
                "supervision counters nonzero in a fault-free run", "A");
    ok &= check(lost(s) == 0, "queries lost in a fault-free run", "A");
    ok &= answers_identical(queries, results, ref, "A");

    // Same service, same workload: modeled sums must be bit-identical
    // (batch-index-order summation, schedule-independent).
    (void)service.run(queries);
    const auto& s2 = service.stats();
    ok &= check(s2.modeled_compute_s == first_run.modeled_compute_s &&
                    s2.modeled_comm_s == first_run.modeled_comm_s &&
                    s2.total_edges == first_run.total_edges &&
                    s2.total_comm_bytes == first_run.total_comm_bytes &&
                    s2.batches == first_run.batches,
                "repeat fault-free run's modeled stats not bit-identical",
                "A");
  }

  // ----------------------------------------------------------------
  // Phase B: chaos — permanent device loss on lane 0 + seeded
  // transients on every lane.
  // ----------------------------------------------------------------
  {
    serve::ServeOptions opts;
    opts.config = cfg;
    opts.batch_width = workload.batch_width;
    opts.num_lanes = lanes;
    // Device 1 of lane 0's machine dies for good a few kernel events
    // in — mid-batch, so the in-flight batch must requeue to healthy
    // lanes while lane 0 restarts on replacement hardware.
    opts.fault_plan = "kernel_fault@1#4";
    opts.fault_seed = seed + 7;
    opts.max_batch_retries = 3;
    opts.max_lane_restarts = 2;
    serve::QueryService service(g, opts);
    const auto results = service.run(queries);
    const auto& s = service.stats();
    table.add_row({std::string("chaos"),
                   static_cast<long long>(s.answered),
                   static_cast<long long>(s.timed_out),
                   static_cast<long long>(s.shed),
                   static_cast<long long>(s.failed),
                   static_cast<long long>(s.requeues),
                   static_cast<long long>(s.lane_restarts),
                   static_cast<long long>(s.faults_injected), s.qps});
    ok &= check(lost(s) == 0,
                "chaos run lost queries (answered + timed_out + shed + "
                "failed != submitted)",
                "B");
    ok &= check(s.faults_injected >= 1, "no fault ever fired (vacuous)",
                "B");
    ok &= check(s.lane_restarts >= 1,
                "permanent device loss caused no lane restart", "B");
    ok &= check(s.requeues >= 1, "no batch was ever requeued", "B");
    ok &= check(s.answered >= 1, "chaos run answered nothing", "B");
    ok &= check(s.lanes_quarantined < static_cast<std::uint64_t>(lanes),
                "every lane quarantined — service did not survive", "B");
    bool other_lane_answered = false;
    for (const auto& r : results) {
      other_lane_answered |= r.status == Status::kOk && r.lane != 0;
    }
    ok &= check(other_lane_answered,
                "no answers from lanes other than the faulted one", "B");
    ok &= answers_identical(queries, results, ref, "B");
  }

  // ----------------------------------------------------------------
  // Phase C: open-loop overload — shed, don't queue without bound.
  // ----------------------------------------------------------------
  {
    serve::ServeOptions opts;
    opts.config = cfg;
    opts.batch_width = workload.batch_width;
    opts.num_lanes = lanes;
    opts.admission_capacity = 4;
    serve::QueryService service(g, opts);
    const std::size_t n = std::min<std::size_t>(64, queries.size());
    const std::span<const serve::Query> burst(queries.data(), n);
    // ~1M QPS offered: the whole burst arrives in ~n microseconds,
    // orders of magnitude above what the lanes can answer.
    const auto arrivals =
        serve::generate_poisson_arrivals(n, 1e6, workload.seed);
    const auto results = service.run_open_loop(burst, arrivals);
    const auto& s = service.stats();
    table.add_row({std::string("open-loop"),
                   static_cast<long long>(s.answered),
                   static_cast<long long>(s.timed_out),
                   static_cast<long long>(s.shed),
                   static_cast<long long>(s.failed),
                   static_cast<long long>(s.requeues),
                   static_cast<long long>(s.lane_restarts),
                   static_cast<long long>(s.faults_injected), s.qps});
    ok &= check(lost(s) == 0, "open-loop run lost queries", "C");
    ok &= check(s.shed >= 1,
                "overload never shed (admission bound not enforced)", "C");
    ok &= check(s.answered >= 1, "overload answered nothing", "C");
    ok &= check(s.failed == 0 && s.lane_restarts == 0,
                "fault-free open-loop run reported failures", "C");
    ok &= answers_identical(burst, results, ref, "C");
    std::printf("open loop: offered %.0f QPS, achieved %.0f QPS, "
                "admitted %llu / shed %llu of %zu\n",
                s.offered_qps, s.qps,
                static_cast<unsigned long long>(s.answered),
                static_cast<unsigned long long>(s.shed), n);
  }

  bench::emit(table, options);
  std::printf("stats json: %s\n",
              serve::serve_stats_to_json(first_run).c_str());
  std::printf("acceptance (fault-free inert + bit-identical, chaos "
              "zero-lost + restart + requeue + identical answers + "
              "survival, open-loop shed-not-lose): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
