// Table V: large graphs on 4 GPUs, and the cost of 64-bit vertex/edge
// IDs.
//
// Paper reference values: friendster BFS 339 ms, friendster PR 1024
// ms/iter, sk-2005 BFS 2717 ms, sk-2005 PR 154 ms/iter; and on
// rmat_n24_32, BFS at {32-bit eID, 64-bit eID, 64-bit vID} = {67.6,
// 52.6, 33.9} GTEPS — 64-bit vertex IDs double the bandwidth demand
// per edge and halve the throughput ("reads 2x data per edge as
// 32-bit, and records 0.5x performance").
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include "bench_support.hpp"
#include "primitives/dobfs.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  // --- Part 1: large graphs (modeled full size via the scale knob). ---
  {
    util::Table table("Table V (part 1): large graphs on " +
                      std::to_string(gpus) + " GPUs");
    table.set_columns(
        {"graph", "algo", "ours ms (modeled)", "paper ms"}, 1);
    struct Row {
      const char* graph;
      const char* algo;
      double paper_ms;
    };
    const std::vector<Row> rows = {
        {"friendster", "bfs", 339},
        {"friendster", "pr", 1024 * 20},  // paper reports ms/iter; x20
        {"sk-2005", "bfs", 2717},
        {"sk-2005", "pr", 154 * 20},
    };
    for (const auto& row : rows) {
      const auto ds = graph::build_dataset(row.graph, seed);
      const double scale = bench::dataset_scale(ds);
      auto cfg = bench::config_for_primitive(row.algo, gpus, seed);
      const auto ours =
          bench::run_primitive(row.algo, ds.graph, "k40", cfg, scale);
      table.add_row({row.graph, row.algo, ours.modeled_ms, row.paper_ms});
    }
    bench::emit(table, options);
  }

  // --- Part 2: ID-width sweep on rmat_n24_32 (BFS). ---
  {
    util::Table table("Table V (part 2): 32- vs 64-bit IDs, BFS on "
                      "rmat_n24_32");
    table.set_columns({"vertex ID", "edge ID", "ours GTEPS (modeled)",
                       "paper GTEPS", "vs 32/32"},
                      2);
    struct IdRow {
      int v_bytes;
      int e_bytes;
      double paper_gteps;
    };
    const std::vector<IdRow> rows = {
        {4, 4, 67.6}, {4, 8, 52.6}, {8, 8, 33.9}};
    const auto ds = graph::build_dataset("rmat_n24_32", seed);
    const double scale = bench::dataset_scale(ds);
    double base_gteps = 0;
    for (const auto& row : rows) {
      // The paper's headline BFS GTEPS on rmat are direction-optimized.
      auto cfg = bench::config_for_primitive("dobfs", gpus, seed);
      auto machine = vgpu::Machine::create("k40", gpus);
      machine.set_workload_scale(scale);
      machine.set_id_widths({row.v_bytes, row.e_bytes});
      prim::DobfsProblem problem;
      problem.init(ds.graph, machine, cfg);
      prim::DobfsEnactor enactor(problem);
      enactor.reset(bench::pick_source(ds.graph));
      const auto stats = enactor.enact();
      const double gteps =
          stats.gteps(static_cast<double>(ds.graph.num_edges) * scale);
      if (base_gteps == 0) base_gteps = gteps;
      table.add_row({std::to_string(row.v_bytes * 8) + "-bit",
                     std::to_string(row.e_bytes * 8) + "-bit", gteps,
                     row.paper_gteps, gteps / base_gteps});
    }
    bench::emit(table, options);
  }
  return 0;
}
