// Fig. 3: memory consumption of the four allocation schemes (§VI-B)
// running BFS on kron, soc-orkut, and uk-2002.
//
// Paper finding: max allocation (worst-case |E| buffers) uses several
// times the memory of the others; just-enough is the smallest,
// prealloc+fusion close behind, fixed in between — and all schemes
// have near-identical computation times.
//
// We report the summed peak device-memory usage across GPUs, both at
// analog scale (measured) and extrapolated to the paper's full-size
// dataset (x scale factor) for comparison with the figure's GB axis.
//
// Flags: --gpus=N (default 4), --csv=PATH.
#include <cstdio>

#include "bench_support.hpp"
#include "primitives/bfs.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"gpus"});
  const int gpus = static_cast<int>(options.get_int("gpus", 4));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));

  const std::vector<std::string> datasets = {"kron_n24_32", "soc-orkut",
                                             "uk-2002"};
  const std::vector<vgpu::AllocationScheme> schemes = {
      vgpu::AllocationScheme::kJustEnough,
      vgpu::AllocationScheme::kFixedPrealloc,
      vgpu::AllocationScheme::kMax,
      vgpu::AllocationScheme::kPreallocFusion,
  };

  util::Table table("Fig. 3: BFS peak memory by allocation scheme (" +
                    std::to_string(gpus) + " GPUs)");
  table.set_columns({"dataset", "scheme", "peak MB (analog)",
                     "extrapolated GB (full size)", "modeled ms",
                     "reallocs"},
                    2);

  for (const auto& name : datasets) {
    const auto ds = graph::build_dataset(name, seed);
    const double scale = bench::dataset_scale(ds);
    for (const auto scheme : schemes) {
      auto cfg = bench::config_for_primitive("bfs", gpus, seed);
      cfg.scheme = scheme;

      auto machine = vgpu::Machine::create("k40", gpus);
      machine.set_workload_scale(scale);

      prim::BfsProblem problem;
      problem.init(ds.graph, machine, cfg);
      prim::BfsEnactor enactor(problem);
      enactor.reset(bench::pick_source(ds.graph));
      const auto stats = enactor.enact();

      std::size_t peak_bytes = 0;
      for (int gpu = 0; gpu < gpus; ++gpu) {
        peak_bytes += machine.device(gpu).memory().peak_bytes();
      }
      std::size_t reallocs = 0;
      for (int gpu = 0; gpu < gpus; ++gpu) {
        reallocs += enactor.slice(gpu).frontier.realloc_count();
      }

      table.add_row({name, vgpu::to_string(scheme),
                     static_cast<double>(peak_bytes) / (1 << 20),
                     static_cast<double>(peak_bytes) * scale / (1 << 30),
                     stats.modeled_total_s() * 1e3,
                     static_cast<long long>(reallocs)});
    }
  }
  bench::emit(table, options);
  return 0;
}
