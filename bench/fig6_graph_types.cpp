// Fig. 6: geomean mGPU speedups over 1 GPU split by graph family
// (rmat / soc / web) for BFS, DOBFS, and PR, at 2-6 GPUs.
//
// Paper findings: DOBFS suffers most on rmat (its communication is
// O(|V|)-scale while its computation collapses to O(|V_i|)); the large
// |E|/|V| of rmat *helps* BFS and PR scalability (computation is
// O(|E_i|), communication at most O(|V_i|)).
//
// Flags: --suite=fast|default|full (datasets per family), --csv=PATH.
#include <cstdio>
#include <map>

#include "bench_support.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mgg;
  const auto options = bench::parse_common(argc, argv, {"max-gpus"});
  const auto suite = options.get_string("suite", "default");
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  const int max_gpus = static_cast<int>(options.get_int("max-gpus", 6));

  std::map<std::string, std::vector<std::string>> families;
  if (suite == "fast") {
    families = {{"rmat", {"rmat_n20_512"}},
                {"soc", {"hollywood-2009"}},
                {"web", {"indochina-2004"}}};
  } else if (suite == "full") {
    for (const std::string fam : {"rmat", "soc", "web"}) {
      families[fam] = graph::datasets_in_family(fam);
    }
  } else {
    families = {{"rmat", {"rmat_n20_512", "rmat_n22_128"}},
                {"soc", {"hollywood-2009", "soc-orkut"}},
                {"web", {"indochina-2004", "uk-2002"}}};
  }
  const std::vector<std::string> primitives = {"bfs", "dobfs", "pr"};

  util::Table table("Fig. 6: geomean speedup vs 1 GPU by graph family");
  std::vector<std::string> cols = {"primitive", "family"};
  for (int g = 2; g <= max_gpus; ++g) cols.push_back(std::to_string(g) + " GPUs");
  table.set_columns(cols, 2);

  for (const auto& primitive : primitives) {
    // speedups[gpus] per family plus the "all" aggregation.
    std::map<std::string, std::map<int, std::vector<double>>> speedups;
    for (const auto& [family, names] : families) {
      for (const auto& name : names) {
        const auto ds = graph::build_dataset(name, seed);
        const double scale = bench::dataset_scale(ds);
        auto cfg1 = bench::config_for_primitive(primitive, 1, seed);
        const double base_ms =
            bench::run_primitive(primitive, ds.graph, "k40", cfg1, scale)
                .modeled_ms;
        for (int gpus = 2; gpus <= max_gpus; ++gpus) {
          auto cfg = bench::config_for_primitive(primitive, gpus, seed);
          const double ms =
              bench::run_primitive(primitive, ds.graph, "k40", cfg, scale)
                  .modeled_ms;
          speedups[family][gpus].push_back(base_ms / ms);
          speedups["all"][gpus].push_back(base_ms / ms);
        }
      }
    }
    for (const std::string family : {"all", "rmat", "soc", "web"}) {
      std::vector<util::Cell> row = {primitive, family};
      for (int gpus = 2; gpus <= max_gpus; ++gpus) {
        row.push_back(util::geometric_mean(speedups[family][gpus]));
      }
      table.add_row(std::move(row));
    }
    std::printf("  %s done\n", primitive.c_str());
  }
  bench::emit(table, options);
  return 0;
}
